(* Tests for the mini-C++ frontend: lexer, parser, pretty-printer,
   typechecker, query engine, rewriter, and LOC accounting. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse = Parser.parse_program
let pexpr = Parser.parse_expr
let pstmt = Parser.parse_stmt

(* ---- lexer ---- *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lex_basic () =
  Alcotest.(check int) "token count" 6 (List.length (toks "int x = 1;"))

let test_lex_comments () =
  let t = toks "1 // comment\n/* block\ncomment */ 2" in
  checki "comments skipped" 3 (List.length t);
  check "values" true (t = [ Token.INT_LIT 1; Token.INT_LIT 2; Token.EOF ])

let test_lex_float_suffix () =
  (match toks "1.5f 2.5 3f" with
   | [ Token.FLOAT_LIT (a, true); Token.FLOAT_LIT (b, false); Token.FLOAT_LIT (c, true);
       Token.EOF ] ->
     check "1.5f" true (a = 1.5);
     check "2.5" true (b = 2.5);
     check "3f" true (c = 3.0)
   | _ -> Alcotest.fail "unexpected tokens")

let test_lex_scientific () =
  (match toks "1e3 2.5e-2" with
   | [ Token.FLOAT_LIT (a, false); Token.FLOAT_LIT (b, false); Token.EOF ] ->
     check "1e3" true (a = 1000.0);
     check "2.5e-2" true (Float.abs (b -. 0.025) < 1e-12)
   | _ -> Alcotest.fail "unexpected tokens")

let test_lex_operators () =
  check "two-char ops" true
    (toks "<= >= == != && || += -= *= /= ++ --"
     = [ Token.LE; Token.GE; Token.EQEQ; Token.NE; Token.AMPAMP; Token.BARBAR;
         Token.PLUSEQ; Token.MINUSEQ; Token.STAREQ; Token.SLASHEQ; Token.PLUSPLUS;
         Token.MINUSMINUS; Token.EOF ])

let test_lex_pragma () =
  (match toks "#pragma omp parallel for\nx" with
   | [ Token.PRAGMA text; Token.IDENT "x"; Token.EOF ] ->
     checks "pragma text" "omp parallel for" text
   | _ -> Alcotest.fail "pragma not lexed")

let test_lex_keywords () =
  check "keywords" true
    (toks "void bool int float double if else for while return const true false break continue"
     |> List.length = 16)

let test_lex_restrict_variants () =
  check "restrict variants" true
    (toks "restrict __restrict__ __restrict"
     = [ Token.KW_RESTRICT; Token.KW_RESTRICT; Token.KW_RESTRICT; Token.EOF ])

let test_lex_error_char () =
  check "bad char raises" true
    (try ignore (Lexer.tokenize "int $x;"); false with Lexer.Error _ -> true)

let test_lex_unterminated_comment () =
  check "unterminated comment raises" true
    (try ignore (Lexer.tokenize "/* never closed"); false with Lexer.Error _ -> true)

let test_lex_locations () =
  match Lexer.tokenize "a\n  b" with
  | [ (_, la); (_, lb); _ ] ->
    checki "line a" 1 la.Loc.line;
    checki "line b" 2 lb.Loc.line;
    checki "col b" 3 lb.Loc.col
  | _ -> Alcotest.fail "unexpected"

(* ---- parser: expressions ---- *)

let show_e e = Pretty.expr_to_string e

let test_parse_precedence_mul_add () =
  checks "mul binds tighter" "1 + 2 * 3" (show_e (pexpr "1 + 2 * 3"))

let test_parse_precedence_paren () =
  checks "parens preserved" "(1 + 2) * 3" (show_e (pexpr "(1 + 2) * 3"))

let test_parse_left_assoc_sub () =
  (* 10 - 3 - 2 must parse as (10-3)-2 = 5 *)
  match (pexpr "10 - 3 - 2").Ast.edesc with
  | Ast.Binary (Ast.Sub, { Ast.edesc = Ast.Binary (Ast.Sub, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "subtraction not left-associative"

let test_parse_unary_minus () =
  match (pexpr "-x * y").Ast.edesc with
  | Ast.Binary (Ast.Mul, { Ast.edesc = Ast.Unary (Ast.Neg, _); _ }, _) -> ()
  | _ -> Alcotest.fail "unary minus should bind tighter than *"

let test_parse_ternary () =
  match (pexpr "a < b ? 1 : 2").Ast.edesc with
  | Ast.Cond ({ Ast.edesc = Ast.Binary (Ast.Lt, _, _); _ }, _, _) -> ()
  | _ -> Alcotest.fail "ternary structure"

let test_parse_ternary_right_assoc () =
  match (pexpr "a ? 1 : b ? 2 : 3").Ast.edesc with
  | Ast.Cond (_, _, { Ast.edesc = Ast.Cond (_, _, _); _ }) -> ()
  | _ -> Alcotest.fail "ternary should be right-associative"

let test_parse_call_args () =
  match (pexpr "pow(x, 2.0)").Ast.edesc with
  | Ast.Call ("pow", [ _; _ ]) -> ()
  | _ -> Alcotest.fail "call args"

let test_parse_index_chain () =
  checks "nested index" "a[i][j]" (show_e (pexpr "a[i][j]"))

let test_parse_cast () =
  match (pexpr "(double)n / 2.0").Ast.edesc with
  | Ast.Binary (Ast.Div, { Ast.edesc = Ast.Cast (Ast.Tdouble, _); _ }, _) -> ()
  | _ -> Alcotest.fail "cast then divide"

let test_parse_logic_precedence () =
  (* && binds tighter than || *)
  match (pexpr "a || b && c").Ast.edesc with
  | Ast.Binary (Ast.Or, _, { Ast.edesc = Ast.Binary (Ast.And, _, _); _ }) -> ()
  | _ -> Alcotest.fail "&& should bind tighter than ||"

let test_parse_mod () =
  match (pexpr "(i * 3 + k) % n").Ast.edesc with
  | Ast.Binary (Ast.Mod, _, _) -> ()
  | _ -> Alcotest.fail "mod"

let test_lex_trailing_dot_float () =
  (match toks "1. 2.f" with
   | [ Token.FLOAT_LIT (a, false); Token.FLOAT_LIT (b, true); Token.EOF ] ->
     check "1." true (a = 1.0);
     check "2.f" true (b = 2.0)
   | _ -> Alcotest.fail "trailing-dot floats")

let test_lex_int_suffix_f () =
  (match toks "3f" with
   | [ Token.FLOAT_LIT (v, true); Token.EOF ] -> check "3f is a float" true (v = 3.0)
   | _ -> Alcotest.fail "3f")

let test_parse_nested_calls () =
  checks "nested calls" "fmax(sqrt(x), fabs(y))"
    (show_e (pexpr "fmax(sqrt(x), fabs(y))"))

let test_parse_deep_parens () =
  check "deep nesting parses" true
    (match (pexpr "((((x))))").Ast.edesc with Ast.Var "x" -> true | _ -> false)

(* ---- parser: statements ---- *)

let test_parse_for_canonical () =
  match (pstmt "for (int i = 0; i < n; i++) { }").Ast.sdesc with
  | Ast.For (h, []) ->
    checks "index" "i" h.Ast.index;
    check "cmp lt" true (h.Ast.cmp = Ast.CLt);
    check "step 1" true (match h.Ast.step.Ast.edesc with Ast.Int_lit 1 -> true | _ -> false)
  | _ -> Alcotest.fail "for"

let test_parse_for_le_and_step () =
  match (pstmt "for (int i = 2; i <= n; i += 3) { }").Ast.sdesc with
  | Ast.For (h, _) ->
    check "cmp le" true (h.Ast.cmp = Ast.CLe);
    check "step 3" true (match h.Ast.step.Ast.edesc with Ast.Int_lit 3 -> true | _ -> false)
  | _ -> Alcotest.fail "for le"

let test_parse_for_i_eq_i_plus () =
  match (pstmt "for (int i = 0; i < n; i = i + 2) { }").Ast.sdesc with
  | Ast.For (h, _) ->
    check "step 2" true (match h.Ast.step.Ast.edesc with Ast.Int_lit 2 -> true | _ -> false)
  | _ -> Alcotest.fail "for i=i+2"

let test_parse_for_single_stmt_body () =
  match (pstmt "for (int i = 0; i < 4; i++) x += 1.0;").Ast.sdesc with
  | Ast.For (_, [ { Ast.sdesc = Ast.Assign (_, Ast.AddEq, _); _ } ]) -> ()
  | _ -> Alcotest.fail "unbraced body"

let test_parse_for_wrong_index_rejected () =
  check "mismatched condition var rejected" true
    (try ignore (pstmt "for (int i = 0; j < n; i++) { }"); false
     with Parser.Error _ -> true)

let test_parse_for_downward_rejected () =
  check "i-- loops rejected" true
    (try ignore (pstmt "for (int i = n; i > 0; i--) { }"); false
     with Parser.Error _ -> true)

let test_parse_if_else () =
  match (pstmt "if (a < b) { x = 1; } else { x = 2; }").Ast.sdesc with
  | Ast.If (_, [ _ ], [ _ ]) -> ()
  | _ -> Alcotest.fail "if/else"

let test_parse_if_no_else () =
  match (pstmt "if (a < b) x = 1;").Ast.sdesc with
  | Ast.If (_, [ _ ], []) -> ()
  | _ -> Alcotest.fail "if without else"

let test_parse_while () =
  match (pstmt "while (x < 10.0) { x *= 2.0; }").Ast.sdesc with
  | Ast.While (_, [ { Ast.sdesc = Ast.Assign (_, Ast.MulEq, _); _ } ]) -> ()
  | _ -> Alcotest.fail "while"

let test_parse_incr_stmt () =
  match (pstmt "x++;").Ast.sdesc with
  | Ast.Assign (_, Ast.AddEq, { Ast.edesc = Ast.Int_lit 1; _ }) -> ()
  | _ -> Alcotest.fail "x++ sugar"

let test_parse_decl_array () =
  match (pstmt "double a[N * 2];").Ast.sdesc with
  | Ast.Decl { Ast.darray = Some _; dty = Ast.Tdouble; _ } -> ()
  | _ -> Alcotest.fail "array decl"

let test_parse_const_decl () =
  match (pstmt "const int k = 3;").Ast.sdesc with
  | Ast.Decl { Ast.dconst = true; dinit = Some _; _ } -> ()
  | _ -> Alcotest.fail "const decl"

let test_parse_pragma_attach () =
  let s = pstmt "#pragma omp parallel for\nfor (int i = 0; i < n; i++) { }" in
  match s.Ast.pragmas with
  | [ { Ast.pname = "omp"; pargs = [ "parallel"; "for" ] } ] -> ()
  | _ -> Alcotest.fail "pragma attachment"

let test_parse_two_pragmas () =
  let s = pstmt "#pragma unroll 4\n#pragma oneapi single_task\nwhile (x < 1.0) { x += 0.1; }" in
  checki "two pragmas" 2 (List.length s.Ast.pragmas)

let test_parse_program_globals () =
  let p = parse "const int N = 4;\ndouble buf[N];\nint main() { return 0; }" in
  checki "globals" 2 (List.length (Ast.globals_decls p));
  checki "functions" 1 (List.length (Ast.funcs p))

let test_parse_params () =
  let p = parse "void f(const double* __restrict__ a, double* b, int n) { }" in
  match Ast.find_func p "f" with
  | Some fn ->
    (match fn.Ast.fparams with
     | [ pa; pb; pn ] ->
       check "a const" true pa.Ast.prm_const;
       check "a restrict" true pa.Ast.prm_restrict;
       check "b plain" true ((not pb.Ast.prm_const) && not pb.Ast.prm_restrict);
       check "n int" true (pn.Ast.prm_ty = Ast.Tint)
     | _ -> Alcotest.fail "params")
  | None -> Alcotest.fail "no f"

let test_parse_error_message_has_location () =
  (try
     ignore (parse "int main() { int x = ; }");
     Alcotest.fail "should not parse"
   with Parser.Error (loc, _) -> checki "error line" 1 loc.Loc.line)

let test_parse_break_continue () =
  let p = parse "int main() { for (int i = 0; i < 9; i++) { if (i == 2) { continue; } if (i == 5) { break; } } return 0; }" in
  checki "one function" 1 (List.length (Ast.funcs p))

(* ---- pretty round-trip ---- *)

let roundtrip_stable src =
  let p = parse src in
  let t1 = Pretty.program_to_string p in
  let t2 = Pretty.program_to_string (parse t1) in
  checks "round trip stable" t1 t2

let test_roundtrip_simple () =
  roundtrip_stable "int main() { double x = 1.5; print_float(x); return 0; }"

let test_roundtrip_apps () =
  List.iter (fun (a : App.t) -> roundtrip_stable a.app_source) Suite.all

let test_pretty_negative_literal () =
  checks "negative literal parenthesised" "(-3)" (show_e (Builder.ilit (-3)))

let test_pretty_float_roundtrip_value () =
  let e = Builder.flit 0.1 in
  match (pexpr (show_e e)).Ast.edesc with
  | Ast.Float_lit (v, false) -> check "0.1 survives" true (v = 0.1)
  | _ -> Alcotest.fail "float"

(* random expression generator for the parse/print round-trip property *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map Builder.ilit (0 -- 99);
        map Builder.flit (map (fun n -> float_of_int n /. 8.0) (0 -- 800));
        map (fun n -> Builder.var (Printf.sprintf "v%d" n)) (0 -- 5);
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 4,
            map3
              (fun op a b -> Ast.mk_expr (Ast.Binary (op, a, b)))
              (oneofl Ast.[ Add; Sub; Mul; Div; Lt; Le; Gt; Ge; Eq; Ne ])
              (node (depth - 1)) (node (depth - 1)) );
          (1, map (fun a -> Builder.neg a) (node (depth - 1)));
          (1, map2 (fun a b -> Builder.idx a b) (map (fun n -> Builder.var (Printf.sprintf "arr%d" n)) (0 -- 2)) (node (depth - 1)));
          (1, map3 (fun c a b -> Builder.cond c a b) (node (depth - 1)) (node (depth - 1)) (node (depth - 1)));
        ]
  in
  node 4

let rec expr_equal_modulo_ids (a : Ast.expr) (b : Ast.expr) =
  match a.Ast.edesc, b.Ast.edesc with
  | Ast.Int_lit x, Ast.Int_lit y -> x = y
  | Ast.Float_lit (x, sx), Ast.Float_lit (y, sy) -> x = y && sx = sy
  | Ast.Bool_lit x, Ast.Bool_lit y -> x = y
  | Ast.Var x, Ast.Var y -> x = y
  | Ast.Unary (o1, x), Ast.Unary (o2, y) -> o1 = o2 && expr_equal_modulo_ids x y
  | Ast.Binary (o1, x1, y1), Ast.Binary (o2, x2, y2) ->
    o1 = o2 && expr_equal_modulo_ids x1 x2 && expr_equal_modulo_ids y1 y2
  | Ast.Call (f1, a1), Ast.Call (f2, a2) ->
    f1 = f2 && List.length a1 = List.length a2
    && List.for_all2 expr_equal_modulo_ids a1 a2
  | Ast.Index (x1, y1), Ast.Index (x2, y2) ->
    expr_equal_modulo_ids x1 x2 && expr_equal_modulo_ids y1 y2
  | Ast.Cast (t1, x), Ast.Cast (t2, y) -> Ast.equal_ty t1 t2 && expr_equal_modulo_ids x y
  | Ast.Cond (c1, x1, y1), Ast.Cond (c2, x2, y2) ->
    expr_equal_modulo_ids c1 c2 && expr_equal_modulo_ids x1 x2
    && expr_equal_modulo_ids y1 y2
  | _, _ -> false

let qcheck_expr_roundtrip =
  QCheck.Test.make ~name:"print-parse round trip preserves expressions" ~count:300
    (QCheck.make gen_expr ~print:show_e)
    (fun e -> expr_equal_modulo_ids e (pexpr (show_e e)))

(* ---- typecheck ---- *)

let typed src = Typecheck.check_program (parse src)

let test_type_ok () =
  check "well-typed" true (typed "int main() { double x = 1; int n = 3; x = x * (double)n; return n; }" = Ok ())

let test_type_unbound_var () =
  check "unbound var" true (match typed "int main() { x = 1; return 0; }" with Error _ -> true | Ok () -> false)

let test_type_unknown_function () =
  check "unknown function" true
    (match typed "int main() { double y = mystery(1.0); return 0; }" with
     | Error _ -> true
     | Ok () -> false)

let test_type_arity () =
  check "arity mismatch" true
    (match typed "int main() { double y = sqrt(1.0, 2.0); return 0; }" with
     | Error _ -> true
     | Ok () -> false)

let test_type_index_non_pointer () =
  check "indexing scalar" true
    (match typed "int main() { int x = 1; int y = x[0]; return 0; }" with
     | Error _ -> true
     | Ok () -> false)

let test_type_mod_floats_rejected () =
  check "float % rejected" true
    (match typed "int main() { double x = 1.5 % 2.0; return 0; }" with
     | Error _ -> true
     | Ok () -> false)

let test_type_return_mismatch () =
  check "pointer returned as int" true
    (match typed "int main() { double a[3]; return 0; } double* f(double* p) { return p; }" with
     | Ok () -> true
     | Error _ -> false)

let test_type_collects_all_errors () =
  match typed "int main() { x = 1; return 0; } void g() { y = 2.0; }" with
  | Error errs -> checki "two errors" 2 (List.length errs)
  | Ok () -> Alcotest.fail "should fail"

let test_free_vars () =
  let s = pstmt "for (int j = 0; j < n; j++) { acc += a[j] * b[i]; }" in
  let fv = Typecheck.free_vars_stmt s in
  check "free vars" true
    (List.sort compare fv = [ "a"; "acc"; "b"; "i"; "n" ])

let test_free_vars_decl_not_free () =
  let s = pstmt "for (int j = 0; j < 4; j++) { double t = 1.0; acc += t; }" in
  check "t not free" true (not (List.mem "t" (Typecheck.free_vars_stmt s)))

let test_scope_at () =
  let p = parse "const int N = 4; void f(double* a) { int k = 1; for (int i = 0; i < N; i++) { a[i] = (double)k; } }" in
  let fn = Option.get (Ast.find_func p "f") in
  let loop = List.hd (Query.loops_in_func fn) in
  let body_stmt = List.hd loop.Query.lm_body in
  let scope = Typecheck.scope_at p fn body_stmt.Ast.sid in
  check "i visible" true (List.mem_assoc "i" scope);
  check "k visible" true (List.mem_assoc "k" scope);
  check "a visible" true (List.mem_assoc "a" scope);
  check "N visible" true (List.mem_assoc "N" scope)

(* ---- query ---- *)

let nest_src =
  "void f(double* a, int n) {\n\
   for (int i = 0; i < n; i++) {\n\
   for (int j = 0; j < 4; j++) { a[i * 4 + j] = 0.0; }\n\
   }\n\
   while (n > 0) { n = n - 1; }\n\
   }"

let test_query_loops () =
  let p = parse nest_src in
  checki "for loops" 2 (List.length (Query.loops p))

let test_query_outermost () =
  let p = parse nest_src in
  let fn = Option.get (Ast.find_func p "f") in
  checki "outermost" 1 (List.length (Query.outermost_loops fn))

let test_query_inner () =
  let p = parse nest_src in
  let fn = Option.get (Ast.find_func p "f") in
  let outer = List.hd (Query.outermost_loops fn) in
  checki "inner" 1 (List.length (Query.inner_loops outer))

let test_query_depth () =
  let p = parse nest_src in
  let fn = Option.get (Ast.find_func p "f") in
  let depths =
    List.map (fun (lm : Query.loop_match) -> Query.loop_depth lm.lm_ctx)
      (Query.loops_in_func fn)
  in
  check "depths 0 and 1" true (List.sort compare depths = [ 0; 1 ])

let test_query_contains () =
  let p = parse nest_src in
  let fn = Option.get (Ast.find_func p "f") in
  let outer = List.hd (Query.outermost_loops fn) in
  let inner = List.hd (Query.inner_loops outer) in
  check "outer contains inner" true
    (Query.stmt_contains outer.Query.lm_stmt inner.Query.lm_stmt.Ast.sid);
  check "inner does not contain outer" false
    (Query.stmt_contains inner.Query.lm_stmt outer.Query.lm_stmt.Ast.sid)

let test_query_writes_reads () =
  let s = pstmt "for (int i = 0; i < n; i++) { out[i] = src[i] + bias; }" in
  check "writes" true (Query.writes_in_block [ s ] = [ "out" ]);
  let reads = Query.reads_in_block [ s ] in
  check "reads src" true (List.mem "src" reads);
  check "reads bias" true (List.mem "bias" reads);
  check "out not read" true (not (List.mem "out" reads))

let test_query_compound_assign_reads_lhs () =
  let s = pstmt "acc[i] += x;" in
  check "compound read" true (List.mem "acc" (Query.reads_in_block [ s ]))

let test_query_calls () =
  let p = parse "void g() { } void f() { g(); print_int(1); g(); }" in
  let fn = Option.get (Ast.find_func p "f") in
  checki "all calls" 3 (List.length (Query.calls_in_block fn.Ast.fbody));
  check "user calls dedup" true (Query.calls_user_functions p fn.Ast.fbody = [ "g" ])

let test_query_array_base () =
  check "base of a[i]" true (Query.array_base_name (pexpr "a[i]") = Some "a");
  check "base of a[i][j]" true (Query.array_base_name (pexpr "a[i][j]") = Some "a");
  check "no base of (a+b)" true (Query.array_base_name (pexpr "a + b") = None)

(* ---- rewrite ---- *)

let test_rewrite_add_pragma () =
  let p = parse "void f(int n) { for (int i = 0; i < n; i++) { } }" in
  let lm = List.hd (Query.loops p) in
  let p = Rewrite.add_pragma p ~sid:lm.Query.lm_stmt.Ast.sid (Builder.pragma "unroll" [ "4" ]) in
  let lm = List.hd (Query.loops p) in
  check "pragma added" true
    (List.exists (fun (pr : Ast.pragma) -> pr.pname = "unroll") lm.Query.lm_stmt.Ast.pragmas)

let test_rewrite_set_pragmas_replaces () =
  let p = parse "void f(int n) { for (int i = 0; i < n; i++) { } }" in
  let lm = List.hd (Query.loops p) in
  let sid = lm.Query.lm_stmt.Ast.sid in
  let p = Rewrite.add_pragma p ~sid (Builder.pragma "unroll" [ "2" ]) in
  let p = Rewrite.set_pragmas p ~sid [ Builder.pragma "unroll" [ "8" ] ] in
  let lm = List.hd (Query.loops p) in
  (match lm.Query.lm_stmt.Ast.pragmas with
   | [ { Ast.pname = "unroll"; pargs = [ "8" ] } ] -> ()
   | _ -> Alcotest.fail "set_pragmas should replace")

let test_rewrite_insert_before_after () =
  let p = parse "void f() { print_int(2); }" in
  let fn = Option.get (Ast.find_func p "f") in
  let target = List.hd fn.Ast.fbody in
  let p = Rewrite.insert_before p ~sid:target.Ast.sid [ Builder.expr_stmt (Builder.call "print_int" [ Builder.ilit 1 ]) ] in
  let p = Rewrite.insert_after p ~sid:target.Ast.sid [ Builder.expr_stmt (Builder.call "print_int" [ Builder.ilit 3 ]) ] in
  let result = Machine.run p ~config:{ Machine.default_config with entry = "f" } in
  Alcotest.(check (list string)) "order" [ "1"; "2"; "3" ] result.Machine.output

let test_rewrite_delete () =
  let p = parse "void f() { print_int(1); print_int(2); }" in
  let fn = Option.get (Ast.find_func p "f") in
  let target = List.hd fn.Ast.fbody in
  let p = Rewrite.delete_stmt p ~sid:target.Ast.sid in
  let result = Machine.run p ~config:{ Machine.default_config with entry = "f" } in
  Alcotest.(check (list string)) "deleted" [ "2" ] result.Machine.output

let test_rewrite_replace_stmt () =
  let p = parse "void f() { print_int(1); }" in
  let fn = Option.get (Ast.find_func p "f") in
  let target = List.hd fn.Ast.fbody in
  let p =
    Rewrite.replace_stmt p ~sid:target.Ast.sid
      (Builder.expr_stmt (Builder.call "print_int" [ Builder.ilit 9 ]))
  in
  let result = Machine.run p ~config:{ Machine.default_config with entry = "f" } in
  Alcotest.(check (list string)) "replaced" [ "9" ] result.Machine.output

let test_rewrite_subst_var () =
  let blk = [ pstmt "y = x + x;" ] in
  let blk = Rewrite.subst_var "x" (Builder.ilit 3) blk in
  checks "substituted" "y = 3 + 3;\n" (Pretty.block_to_string blk)

let test_rewrite_rename_var () =
  let blk = [ pstmt "for (int i = 0; i < n; i++) { a[i] = 0.0; }" ] in
  let blk = Rewrite.rename_var ~from:"i" ~to_:"t" blk in
  let text = Pretty.block_to_string blk in
  check "renamed" true
    (match (List.hd blk).Ast.sdesc with Ast.For (h, _) -> h.Ast.index = "t" | _ -> false);
  check "body uses t" true
    (let rec contains i = i + 4 <= String.length text && (String.sub text i 4 = "a[t]" || contains (i + 1)) in
     contains 0)

let test_rewrite_map_exprs_bottom_up () =
  (* replace every int literal by literal+1; nested literals must all change *)
  let e = pexpr "1 + 2 * 3" in
  let e' =
    Rewrite.subst_var_expr "none" (Builder.ilit 0) e |> fun e ->
    (* use map via Rewrite.map_exprs on a wrapper program *)
    ignore e;
    e
  in
  ignore e';
  let p = parse "int main() { int x = 1 + 2 * 3; return x; }" in
  let p =
    Rewrite.map_exprs
      (fun e ->
        match e.Ast.edesc with
        | Ast.Int_lit n -> Some (Builder.ilit (n + 1))
        | _ -> None)
      p
  in
  let result = Machine.run p in
  check "all literals bumped" true (result.Machine.ret = Some (Value.Vint 14))

let test_refresh_expr_fresh_ids () =
  let e = pexpr "a[i] + b[j]" in
  let e' = Ast.refresh_expr e in
  let ids ex = Ast.fold_expr (fun acc n -> n.Ast.eid :: acc) [] ex in
  check "disjoint ids" true
    (List.for_all (fun i -> not (List.mem i (ids e))) (ids e'))

(* ---- loc count ---- *)

let test_loc_count_text () =
  checki "counts code lines" 2 (Loc_count.count_text "int x;\n\n// comment\ny = 1;\n")

let test_loc_added_pct () =
  let p1 = parse "int main() { return 0; }" in
  let p2 = parse "int f() { return 1; } int main() { return 0; }" in
  check "added positive" true (Loc_count.added_pct ~reference:p1 ~design:p2 > 0.0)

let suite =
  [
    Alcotest.test_case "lex basic" `Quick test_lex_basic;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex float suffix" `Quick test_lex_float_suffix;
    Alcotest.test_case "lex scientific" `Quick test_lex_scientific;
    Alcotest.test_case "lex operators" `Quick test_lex_operators;
    Alcotest.test_case "lex pragma" `Quick test_lex_pragma;
    Alcotest.test_case "lex keywords" `Quick test_lex_keywords;
    Alcotest.test_case "lex restrict variants" `Quick test_lex_restrict_variants;
    Alcotest.test_case "lex error char" `Quick test_lex_error_char;
    Alcotest.test_case "lex unterminated comment" `Quick test_lex_unterminated_comment;
    Alcotest.test_case "lex locations" `Quick test_lex_locations;
    Alcotest.test_case "lex trailing dot" `Quick test_lex_trailing_dot_float;
    Alcotest.test_case "lex 3f" `Quick test_lex_int_suffix_f;
    Alcotest.test_case "parse nested calls" `Quick test_parse_nested_calls;
    Alcotest.test_case "parse deep parens" `Quick test_parse_deep_parens;
    Alcotest.test_case "parse precedence mul/add" `Quick test_parse_precedence_mul_add;
    Alcotest.test_case "parse parens" `Quick test_parse_precedence_paren;
    Alcotest.test_case "parse left assoc" `Quick test_parse_left_assoc_sub;
    Alcotest.test_case "parse unary minus" `Quick test_parse_unary_minus;
    Alcotest.test_case "parse ternary" `Quick test_parse_ternary;
    Alcotest.test_case "parse ternary right assoc" `Quick test_parse_ternary_right_assoc;
    Alcotest.test_case "parse call args" `Quick test_parse_call_args;
    Alcotest.test_case "parse index chain" `Quick test_parse_index_chain;
    Alcotest.test_case "parse cast" `Quick test_parse_cast;
    Alcotest.test_case "parse logic precedence" `Quick test_parse_logic_precedence;
    Alcotest.test_case "parse mod" `Quick test_parse_mod;
    Alcotest.test_case "parse canonical for" `Quick test_parse_for_canonical;
    Alcotest.test_case "parse for <= and step" `Quick test_parse_for_le_and_step;
    Alcotest.test_case "parse for i=i+2" `Quick test_parse_for_i_eq_i_plus;
    Alcotest.test_case "parse unbraced for body" `Quick test_parse_for_single_stmt_body;
    Alcotest.test_case "parse rejects mismatched index" `Quick test_parse_for_wrong_index_rejected;
    Alcotest.test_case "parse rejects downward loop" `Quick test_parse_for_downward_rejected;
    Alcotest.test_case "parse if/else" `Quick test_parse_if_else;
    Alcotest.test_case "parse if no else" `Quick test_parse_if_no_else;
    Alcotest.test_case "parse while" `Quick test_parse_while;
    Alcotest.test_case "parse x++" `Quick test_parse_incr_stmt;
    Alcotest.test_case "parse array decl" `Quick test_parse_decl_array;
    Alcotest.test_case "parse const decl" `Quick test_parse_const_decl;
    Alcotest.test_case "parse pragma attach" `Quick test_parse_pragma_attach;
    Alcotest.test_case "parse two pragmas" `Quick test_parse_two_pragmas;
    Alcotest.test_case "parse program globals" `Quick test_parse_program_globals;
    Alcotest.test_case "parse params" `Quick test_parse_params;
    Alcotest.test_case "parse error location" `Quick test_parse_error_message_has_location;
    Alcotest.test_case "parse break/continue" `Quick test_parse_break_continue;
    Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
    Alcotest.test_case "roundtrip all benchmarks" `Quick test_roundtrip_apps;
    Alcotest.test_case "pretty negative literal" `Quick test_pretty_negative_literal;
    Alcotest.test_case "pretty float value" `Quick test_pretty_float_roundtrip_value;
    QCheck_alcotest.to_alcotest qcheck_expr_roundtrip;
    Alcotest.test_case "type ok" `Quick test_type_ok;
    Alcotest.test_case "type unbound var" `Quick test_type_unbound_var;
    Alcotest.test_case "type unknown function" `Quick test_type_unknown_function;
    Alcotest.test_case "type arity" `Quick test_type_arity;
    Alcotest.test_case "type index non-pointer" `Quick test_type_index_non_pointer;
    Alcotest.test_case "type float mod rejected" `Quick test_type_mod_floats_rejected;
    Alcotest.test_case "type pointer return" `Quick test_type_return_mismatch;
    Alcotest.test_case "type collects errors" `Quick test_type_collects_all_errors;
    Alcotest.test_case "free vars" `Quick test_free_vars;
    Alcotest.test_case "free vars exclude decls" `Quick test_free_vars_decl_not_free;
    Alcotest.test_case "scope at" `Quick test_scope_at;
    Alcotest.test_case "query loops" `Quick test_query_loops;
    Alcotest.test_case "query outermost" `Quick test_query_outermost;
    Alcotest.test_case "query inner" `Quick test_query_inner;
    Alcotest.test_case "query depth" `Quick test_query_depth;
    Alcotest.test_case "query contains" `Quick test_query_contains;
    Alcotest.test_case "query writes/reads" `Quick test_query_writes_reads;
    Alcotest.test_case "query compound reads lhs" `Quick test_query_compound_assign_reads_lhs;
    Alcotest.test_case "query calls" `Quick test_query_calls;
    Alcotest.test_case "query array base" `Quick test_query_array_base;
    Alcotest.test_case "rewrite add pragma" `Quick test_rewrite_add_pragma;
    Alcotest.test_case "rewrite set pragmas" `Quick test_rewrite_set_pragmas_replaces;
    Alcotest.test_case "rewrite insert before/after" `Quick test_rewrite_insert_before_after;
    Alcotest.test_case "rewrite delete" `Quick test_rewrite_delete;
    Alcotest.test_case "rewrite replace" `Quick test_rewrite_replace_stmt;
    Alcotest.test_case "rewrite subst var" `Quick test_rewrite_subst_var;
    Alcotest.test_case "rewrite rename var" `Quick test_rewrite_rename_var;
    Alcotest.test_case "rewrite map exprs" `Quick test_rewrite_map_exprs_bottom_up;
    Alcotest.test_case "refresh expr ids" `Quick test_refresh_expr_fresh_ids;
    Alcotest.test_case "loc count text" `Quick test_loc_count_text;
    Alcotest.test_case "loc added pct" `Quick test_loc_added_pct;
  ]
