(* Tests for the device models: kernel profiles, static features, CPU/GPU/
   FPGA estimates and their monotonicity/shape properties. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let parse = Parser.parse_program

let simple_kernel_src =
  "const int M = 4;\n\
   void knl(double* a, double* b, int n) {\n\
   for (int i = 0; i < n; i++) {\n\
   double s = 0.0;\n\
   for (int k = 0; k < M; k++) { s += b[i] * (double)k; }\n\
   a[i] = sqrt(s + 1.0);\n\
   }\n\
   }\n\
   int main() { double a[32]; double b[32]; for (int i = 0; i < 32; i++) { b[i] = rand01(); } knl(a, b, 32); print_float(a[0]); return 0; }"

let simple_profile () =
  let p = parse simple_kernel_src in
  match Kprofile.collect p ~kernel:"knl" with
  | Ok kp -> (p, kp)
  | Error e -> Alcotest.fail e

let test_kprofile_basic () =
  let _, kp = simple_profile () in
  checki "outer trips" 32 kp.Kprofile.kp_outer_trips;
  checki "invocations" 1 kp.Kprofile.kp_invocations;
  check "outer parallel" true kp.Kprofile.kp_outer_parallel;
  checki "one inner loop" 1 (List.length kp.Kprofile.kp_inner);
  check "no alias" true kp.Kprofile.kp_no_alias

let test_kprofile_inner_structure () =
  let _, kp = simple_profile () in
  let il = List.hd kp.Kprofile.kp_inner in
  check "inner static trips" true (il.Kprofile.il_static_trips = Some 4);
  check "inner unrollable" true il.Kprofile.il_fully_unrollable;
  check "inner fp reduction" true il.Kprofile.il_fp_reduction;
  Alcotest.(check (float 1e-9)) "iters per outer" 4.0 il.Kprofile.il_iters_per_outer

let test_kprofile_scale () =
  let _, kp = simple_profile () in
  let s = Kprofile.scale kp 8 in
  checki "trips scaled" 256 s.Kprofile.kp_outer_trips;
  checki "bytes in scaled" (8 * kp.Kprofile.kp_bytes_in) s.Kprofile.kp_bytes_in;
  checki "invocations unchanged" kp.Kprofile.kp_invocations s.Kprofile.kp_invocations;
  Alcotest.(check (float 1e-9)) "flops scale linearly"
    (8.0 *. Intensity.flop_equiv kp.Kprofile.kp_counters)
    (Intensity.flop_equiv s.Kprofile.kp_counters)

let test_kstatic_ops () =
  let p, _ = simple_profile () in
  match Kstatic.of_kernel p ~fname:"knl" with
  | Error e -> Alcotest.fail e
  | Ok ks ->
    (* the unrolled M=4 inner loop multiplies its body ops *)
    check "dp adds at least 4" true (ks.Kstatic.ks_ops.Kstatic.dp_addsub >= 4);
    checki "one sqrt" 1 ks.Kstatic.ks_ops.Kstatic.dp_sqrt;
    check "regs sane" true (ks.Kstatic.ks_regs_estimate > 16 && ks.ks_regs_estimate <= 255)

let test_kstatic_no_loop_with_thread_index () =
  let p = parse "void body(int i, double* a) { a[i] = 2.0 * (double)i; } int main() { double a[4]; body(1, a); print_float(a[1]); return 0; }" in
  (match Kstatic.of_kernel p ~fname:"body" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "loopless kernel should need thread_index");
  match Kstatic.of_kernel p ~fname:"body" ~thread_index:"i" with
  | Ok ks -> check "analysed" true (Kstatic.total_flop_sites ks.Kstatic.ks_ops >= 1)
  | Error e -> Alcotest.fail e

let test_kstatic_unroll_pragma_gate () =
  (* under the HLS view, a fixed-bound inner loop multiplies its body only
     when annotated #pragma unroll; otherwise it pipelines serially *)
  let p, _ = simple_profile () in
  let plain =
    Result.get_ok (Kstatic.of_kernel ~require_unroll_pragma:true p ~fname:"knl")
  in
  check "unannotated loop is serial" true (plain.Kstatic.ks_has_serial_inner <> None);
  let annotated = Unroll.unroll_fixed_inner p ~kernel:"knl" in
  let ks =
    Result.get_ok (Kstatic.of_kernel ~require_unroll_pragma:true annotated ~fname:"knl")
  in
  check "annotated loop unrolled" true (ks.Kstatic.ks_has_serial_inner = None);
  check "ops multiplied" true
    (Kstatic.total_flop_sites ks.Kstatic.ks_ops
     > Kstatic.total_flop_sites plain.Kstatic.ks_ops)

(* ---- CPU model ---- *)

let test_cpu_single_thread_positive () =
  let _, kp = simple_profile () in
  let e = Cpu_model.single_thread Device.epyc_7543 kp in
  check "positive time" true (e.Cpu_model.ce_time_s > 0.0);
  checki "one thread" 1 e.Cpu_model.ce_threads

let test_cpu_openmp_speedup () =
  let _, kp = simple_profile () in
  let kp = Kprofile.scale kp 50000 in
  let t1 = (Cpu_model.single_thread Device.epyc_7543 kp).Cpu_model.ce_time_s in
  let t32 = (Cpu_model.openmp Device.epyc_7543 ~threads:32 kp).Cpu_model.ce_time_s in
  let speedup = t1 /. t32 in
  check "speedup in 25..32" true (speedup > 25.0 && speedup <= 32.0)

let test_cpu_threads_monotone () =
  let _, kp = simple_profile () in
  let kp = Kprofile.scale kp 50000 in
  let t8 = (Cpu_model.openmp Device.epyc_7543 ~threads:8 kp).Cpu_model.ce_time_s in
  let t16 = (Cpu_model.openmp Device.epyc_7543 ~threads:16 kp).Cpu_model.ce_time_s in
  check "more threads faster" true (t16 < t8)

let test_cpu_dram_roofline () =
  (* a footprint beyond the LLC must add a memory term *)
  let c = Counters.create () in
  c.Counters.bytes_loaded <- 1_000_000_000;
  c.Counters.loads <- 125_000_000;
  let small =
    Cpu_model.time_of_counters Device.epyc_7543 c ~footprint_bytes:1024 ~threads:1
      ~parallel_regions:0
  in
  let large =
    Cpu_model.time_of_counters Device.epyc_7543 c
      ~footprint_bytes:(512 * 1024 * 1024) ~threads:1 ~parallel_regions:0
  in
  check "dram-bound slower" true (large.Cpu_model.ce_time_s > small.Cpu_model.ce_time_s);
  check "memory term present" true (large.Cpu_model.ce_memory_s > 0.0)

(* ---- GPU model ---- *)

let gpu_inputs () =
  let p, kp = simple_profile () in
  let ks = Result.get_ok (Kstatic.of_kernel p ~fname:"knl") in
  (ks, Kprofile.scale kp 4096)

let test_gpu_occupancy_blocks () =
  let spec = Device.gtx_1080_ti in
  checki "thread-limited" 8 (Gpu_model.occupancy spec ~regs_per_thread:32 ~blocksize:256 ~shared_bytes:0);
  checki "reg-limited" 1
    (Gpu_model.occupancy spec ~regs_per_thread:255 ~blocksize:256 ~shared_bytes:0);
  checki "unlaunchable blocksize" 0
    (Gpu_model.occupancy spec ~regs_per_thread:32 ~blocksize:2048 ~shared_bytes:0);
  checki "shared-limited" 2
    (Gpu_model.occupancy spec ~regs_per_thread:16 ~blocksize:64
       ~shared_bytes:(40 * 1024))

let test_gpu_estimate_positive () =
  let ks, kp = gpu_inputs () in
  let e = Gpu_model.estimate Device.rtx_2080_ti ks kp Gpu_model.default_params in
  check "launchable" true e.Gpu_model.ge_launchable;
  check "time positive" true (e.Gpu_model.ge_time_s > 0.0);
  check "occupancy in (0,1]" true (e.Gpu_model.ge_occupancy > 0.0 && e.ge_occupancy <= 1.0)

let test_gpu_pinned_faster_transfers () =
  let ks, kp = gpu_inputs () in
  let base = Gpu_model.default_params in
  let e1 = Gpu_model.estimate Device.rtx_2080_ti ks kp { base with Gpu_model.pinned = false } in
  let e2 = Gpu_model.estimate Device.rtx_2080_ti ks kp { base with Gpu_model.pinned = true } in
  check "pinned reduces transfer" true (e2.Gpu_model.ge_transfer_s < e1.Gpu_model.ge_transfer_s)

let test_gpu_shared_tiling_cuts_traffic () =
  let ks, kp = gpu_inputs () in
  let base = { Gpu_model.default_params with Gpu_model.blocksize = 256 } in
  let e1 = Gpu_model.estimate Device.rtx_2080_ti ks kp { base with Gpu_model.shared_tiling = false } in
  let e2 = Gpu_model.estimate Device.rtx_2080_ti ks kp { base with Gpu_model.shared_tiling = true } in
  check "tiling reduces memory time" true (e2.Gpu_model.ge_memory_s <= e1.Gpu_model.ge_memory_s)

let test_gpu_register_saturation_effect () =
  (* a 255-register kernel gets lower occupancy on the 1080 Ti's wider SMs:
     its hiding efficiency drops below the 2080 Ti's (the Rush Larsen effect) *)
  let ks, kp = gpu_inputs () in
  let ks = { ks with Kstatic.ks_regs_estimate = 255; ks_regs_raw = 300 } in
  let params = { Gpu_model.default_params with Gpu_model.blocksize = 256 } in
  let e1080 = Gpu_model.estimate Device.gtx_1080_ti ks kp params in
  let e2080 = Gpu_model.estimate Device.rtx_2080_ti ks kp params in
  check "1080 hides worse" true
    (e1080.Gpu_model.ge_hiding_efficiency < e2080.Gpu_model.ge_hiding_efficiency)

let test_gpu_spill_traffic () =
  let ks, kp = gpu_inputs () in
  let no_spill = { ks with Kstatic.ks_regs_raw = 100 } in
  let spill = { ks with Kstatic.ks_regs_raw = 400; ks_regs_estimate = 255 } in
  let e1 = Gpu_model.estimate Device.rtx_2080_ti no_spill kp Gpu_model.default_params in
  let e2 = Gpu_model.estimate Device.rtx_2080_ti spill kp Gpu_model.default_params in
  check "spilling adds memory time" true (e2.Gpu_model.ge_memory_s > e1.Gpu_model.ge_memory_s)

let test_gpu_wave_efficiency_small_grid () =
  let ks, kp = gpu_inputs () in
  let tiny = { kp with Kprofile.kp_outer_trips = 64 } in
  let e = Gpu_model.estimate Device.rtx_2080_ti ks tiny { Gpu_model.default_params with Gpu_model.blocksize = 64 } in
  check "small grid underutilises" true (e.Gpu_model.ge_wave_efficiency < 0.5)

(* ---- FPGA model ---- *)

let test_fpga_resources_scale_with_unroll () =
  let p, _ = simple_profile () in
  let ks = Result.get_ok (Kstatic.of_kernel p ~fname:"knl") in
  let r1 = Fpga_model.resources_of Device.pac_arria10 ks ~unroll:1 in
  let r4 = Fpga_model.resources_of Device.pac_arria10 ks ~unroll:4 in
  check "alms grow" true (r4.Fpga_model.r_alms > r1.Fpga_model.r_alms);
  check "shell counted once" true (r4.Fpga_model.r_alms < 4 * r1.Fpga_model.r_alms)

let test_fpga_unroll_speeds_up () =
  let ks, kp = gpu_inputs () in
  let e1 = Fpga_model.estimate Device.pac_stratix10 ks kp { Fpga_model.unroll = 1; zero_copy = false } in
  let e4 = Fpga_model.estimate Device.pac_stratix10 ks kp { Fpga_model.unroll = 4; zero_copy = false } in
  check "unroll reduces kernel time" true (e4.Fpga_model.fe_kernel_s < e1.Fpga_model.fe_kernel_s)

let test_fpga_overmap_flag () =
  let p, _ = simple_profile () in
  let ks = Result.get_ok (Kstatic.of_kernel p ~fname:"knl") in
  let huge = Fpga_model.estimate Device.pac_arria10 ks (snd (gpu_inputs ()))
      { Fpga_model.unroll = 100000; zero_copy = false } in
  check "overmap detected" true huge.Fpga_model.fe_overmapped;
  check "overmapped time infinite" true (huge.Fpga_model.fe_time_s = Float.infinity)

let test_fpga_zero_copy_only_on_usm () =
  let ks, kp = gpu_inputs () in
  let za =
    Fpga_model.estimate Device.pac_arria10 ks kp { Fpga_model.unroll = 1; zero_copy = true }
  in
  let zs =
    Fpga_model.estimate Device.pac_stratix10 ks kp { Fpga_model.unroll = 1; zero_copy = true }
  in
  let ns =
    Fpga_model.estimate Device.pac_stratix10 ks kp { Fpga_model.unroll = 1; zero_copy = false }
  in
  (* on the A10 (no USM) zero_copy must not change the additive model *)
  let za_plain =
    Fpga_model.estimate Device.pac_arria10 ks kp { Fpga_model.unroll = 1; zero_copy = false }
  in
  Alcotest.(check (float 1e-12)) "a10 unaffected" za_plain.Fpga_model.fe_time_s za.Fpga_model.fe_time_s;
  check "s10 zero-copy no slower" true (zs.Fpga_model.fe_time_s <= ns.Fpga_model.fe_time_s)

let test_fpga_serial_inner_raises_ii () =
  (* a kernel with a dynamic-bound inner reduction pipelines serially *)
  let src =
    "void knl(double* a, double* b, int n) {\n\
     for (int i = 0; i < n; i++) { double s = 0.0; for (int j = 0; j < n; j++) { s += b[j]; } a[i] = s; }\n\
     }\n\
     int main() { double a[16]; double b[16]; for (int i = 0; i < 16; i++) { b[i] = 1.0; } knl(a, b, 16); print_float(a[0]); return 0; }"
  in
  let p = parse src in
  let kp = Result.get_ok (Kprofile.collect p ~kernel:"knl") in
  let ks = Result.get_ok (Kstatic.of_kernel p ~fname:"knl") in
  check "serial inner recorded" true (ks.Kstatic.ks_has_serial_inner <> None);
  let e = Fpga_model.estimate Device.pac_arria10 ks kp Fpga_model.default_params in
  check "II well above 1" true (e.Fpga_model.fe_ii > 10.0)

let test_fpga_congestion_derates_clock () =
  let ks, kp = gpu_inputs () in
  (* compare cycle time at low vs near-threshold utilisation via unroll *)
  let e1 = Fpga_model.estimate Device.pac_stratix10 ks kp { Fpga_model.unroll = 1; zero_copy = false } in
  let e8 = Fpga_model.estimate Device.pac_stratix10 ks kp { Fpga_model.unroll = 8; zero_copy = false } in
  (* 8x unroll must be less than 8x faster because congestion derates fmax *)
  check "sub-linear scaling" true
    (e1.Fpga_model.fe_kernel_s /. e8.Fpga_model.fe_kernel_s < 8.0)

(* ---- transfer ---- *)

let test_transfer_model () =
  let link = { Transfer.link_name = "x"; bw_gbs = 1.0; latency_us = 100.0 } in
  Alcotest.(check (float 1e-12)) "bytes + latency" 0.0011
    (Transfer.time_s link ~bytes:1_000_000 ~transactions:1)

let suite =
  [
    Alcotest.test_case "kprofile basic" `Quick test_kprofile_basic;
    Alcotest.test_case "kprofile inner structure" `Quick test_kprofile_inner_structure;
    Alcotest.test_case "kprofile scale" `Quick test_kprofile_scale;
    Alcotest.test_case "kstatic ops" `Quick test_kstatic_ops;
    Alcotest.test_case "kstatic loopless body" `Quick test_kstatic_no_loop_with_thread_index;
    Alcotest.test_case "kstatic unroll pragma gate" `Quick test_kstatic_unroll_pragma_gate;
    Alcotest.test_case "cpu single thread" `Quick test_cpu_single_thread_positive;
    Alcotest.test_case "cpu openmp speedup" `Quick test_cpu_openmp_speedup;
    Alcotest.test_case "cpu threads monotone" `Quick test_cpu_threads_monotone;
    Alcotest.test_case "cpu dram roofline" `Quick test_cpu_dram_roofline;
    Alcotest.test_case "gpu occupancy" `Quick test_gpu_occupancy_blocks;
    Alcotest.test_case "gpu estimate" `Quick test_gpu_estimate_positive;
    Alcotest.test_case "gpu pinned transfers" `Quick test_gpu_pinned_faster_transfers;
    Alcotest.test_case "gpu shared tiling" `Quick test_gpu_shared_tiling_cuts_traffic;
    Alcotest.test_case "gpu register saturation" `Quick test_gpu_register_saturation_effect;
    Alcotest.test_case "gpu spill traffic" `Quick test_gpu_spill_traffic;
    Alcotest.test_case "gpu wave efficiency" `Quick test_gpu_wave_efficiency_small_grid;
    Alcotest.test_case "fpga resources scale" `Quick test_fpga_resources_scale_with_unroll;
    Alcotest.test_case "fpga unroll speeds up" `Quick test_fpga_unroll_speeds_up;
    Alcotest.test_case "fpga overmap" `Quick test_fpga_overmap_flag;
    Alcotest.test_case "fpga zero-copy usm only" `Quick test_fpga_zero_copy_only_on_usm;
    Alcotest.test_case "fpga serial inner II" `Quick test_fpga_serial_inner_raises_ii;
    Alcotest.test_case "fpga congestion" `Quick test_fpga_congestion_derates_clock;
    Alcotest.test_case "transfer model" `Quick test_transfer_model;
  ]
