(* Tests for the interpreter: value semantics, control flow, memory,
   intrinsics, counters, regions, aliasing, step limits. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let run ?config src = Machine.run ?config (Parser.parse_program src)

let ret_int src =
  match (run src).Machine.ret with
  | Some (Value.Vint n) -> n
  | _ -> Alcotest.fail "expected int return"

let output src = (run src).Machine.output

let test_arith_int () = checki "int arith" 17 (ret_int "int main() { return 3 + 2 * 7; }")

let test_int_division_truncates () =
  checki "int division" 3 (ret_int "int main() { return 7 / 2; }")

let test_mod () = checki "mod" 1 (ret_int "int main() { return 7 % 2; }")

let test_div_by_zero_raises () =
  check "div by zero" true
    (try ignore (run "int main() { int z = 0; return 1 / z; }"); false
     with Machine.Runtime_error _ -> true)

let test_float_arith () =
  Alcotest.(check (list string)) "float print" [ "3.5" ]
    (output "int main() { print_float(1.25 + 2.25); return 0; }")

let test_bool_short_circuit () =
  (* the right operand would divide by zero if evaluated *)
  checki "short circuit &&" 0
    (ret_int "int main() { int z = 0; if (false && 1 / z > 0) { return 1; } return 0; }")

let test_ternary () =
  checki "ternary" 5 (ret_int "int main() { int x = 3; return x > 2 ? 5 : 6; }")

let test_for_loop_sum () =
  checki "for sum" 45 (ret_int "int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }")

let test_for_loop_step () =
  checki "stepped" 20 (ret_int "int main() { int s = 0; for (int i = 0; i <= 8; i += 2) { s += i; } return s; }")

let test_while_loop () =
  checki "while" 128 (ret_int "int main() { int x = 1; while (x < 100) { x = x * 2; } return x; }")

let test_break () =
  checki "break" 5 (ret_int "int main() { int i = 0; for (int k = 0; k < 100; k++) { if (k == 5) { break; } i = k + 1; } return i; }")

let test_continue () =
  checki "continue skips" 25
    (ret_int "int main() { int s = 0; for (int k = 0; k < 10; k++) { if (k % 2 == 0) { continue; } s += k; } return s; }")

let test_nested_function_call () =
  checki "call" 12 (ret_int "int twice(int x) { return 2 * x; } int main() { return twice(twice(3)); }")

let test_recursion () =
  checki "factorial" 120
    (ret_int "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } int main() { return fact(5); }")

let test_array_store_load () =
  checki "array rw" 42
    (ret_int "int main() { int a[4]; a[2] = 42; return a[2]; }")

let test_array_out_of_bounds () =
  check "oob raises" true
    (try ignore (run "int main() { int a[4]; return a[4]; }"); false
     with Machine.Runtime_error _ -> true)

let test_array_via_function () =
  checki "array through pointer" 7
    (ret_int "void set(int* p, int i, int v) { p[i] = v; } int main() { int a[3]; set(a, 1, 7); return a[1]; }")

let test_global_array () =
  checki "global array" 9
    (ret_int "const int N = 3; int g[N]; int main() { g[0] = 9; return g[0]; }")

let test_global_override () =
  let config = { Machine.default_config with overrides = [ ("N", Value.Vint 5) ] } in
  let r = run ~config "const int N = 2; int main() { return N; }" in
  check "override applies" true (r.Machine.ret = Some (Value.Vint 5))

let test_float_array_precision () =
  (* float arrays store single precision: 0.1 is not represented exactly *)
  Alcotest.(check (list string)) "sp storage rounds" [ "1" ]
    (output
       "int main() { float a[1]; a[0] = 0.1; double d = a[0]; if (d != 0.1) { print_int(1); } else { print_int(0); } return 0; }")

let test_shadowing_scopes () =
  checki "inner decl shadows" 1
    (ret_int
       "int main() { int x = 1; for (int i = 0; i < 1; i++) { int x = 99; x += 1; } return x; }")

let test_intrinsic_sqrt () =
  Alcotest.(check (list string)) "sqrt" [ "3" ] (output "int main() { print_float(sqrt(9.0)); return 0; }")

let test_intrinsic_minmax () =
  checki "imin/imax" 7 (ret_int "int main() { return imin(7, 9) + imax(-3, 0); }")

let test_intrinsic_rand_deterministic () =
  let a = output "int main() { print_float(rand01()); return 0; }" in
  let b = output "int main() { print_float(rand01()); return 0; }" in
  Alcotest.(check (list string)) "same seed same stream" a b

let test_intrinsic_rand_seed () =
  let config = { Machine.default_config with seed = 1 } in
  let a = (run ~config "int main() { print_float(rand01()); return 0; }").Machine.output in
  let b = output "int main() { print_float(rand01()); return 0; }" in
  check "different seeds differ" true (a <> b)

let test_erf_accuracy () =
  (* erf(1) = 0.8427007929; the A&S approximation is good to ~1e-7 *)
  let r = run "int main() { print_float(erf(1.0)); return 0; }" in
  match r.Machine.output with
  | [ s ] ->
    check "erf(1)" true (Float.abs (float_of_string s -. 0.8427007929) < 1e-5)
  | _ -> Alcotest.fail "no output"

let test_counters_flops () =
  let r = run "int main() { double x = 1.5 * 2.0 + 1.0; print_float(x); return 0; }" in
  let c = r.Machine.counters in
  checki "one dp mul" 1 c.Counters.flops_dp_mul;
  checki "one dp add" 1 c.Counters.flops_dp_add

let test_counters_sp_vs_dp () =
  let r = run "int main() { float x = 1.5f * 2.0f; double y = 1.5 * 2.0; print_float((double)x + y); return 0; }" in
  let c = r.Machine.counters in
  checki "sp mul" 1 c.Counters.flops_sp_mul;
  checki "dp mul" 1 c.Counters.flops_dp_mul

let test_counters_loads_stores () =
  let r = run "int main() { double a[8]; for (int i = 0; i < 8; i++) { a[i] = 1.0; } double s = 0.0; for (int i = 0; i < 8; i++) { s += a[i]; } print_float(s); return 0; }" in
  let c = r.Machine.counters in
  checki "stores" 8 c.Counters.stores;
  checki "loads" 8 c.Counters.loads;
  checki "bytes stored" 64 c.Counters.bytes_stored

let test_counters_specials () =
  let r = run "int main() { print_float(exp(1.0) + sqrt(4.0)); return 0; }" in
  checki "two dp specials" 2 r.Machine.counters.Counters.flops_dp_special

let test_loop_stats () =
  let config = { Machine.default_config with profile_loops = true } in
  let p = Parser.parse_program "int main() { int s = 0; for (int i = 0; i < 6; i++) { for (int j = 0; j < 3; j++) { s += 1; } } return s; }" in
  let lm = List.hd (Query.loops p) in
  let inner = List.hd (Query.inner_loops lm) in
  let r = Machine.run ~config p in
  let outer_stats = Option.get (Machine.find_loop_stats r lm.Query.lm_stmt.Ast.sid) in
  let inner_stats = Option.get (Machine.find_loop_stats r inner.Query.lm_stmt.Ast.sid) in
  checki "outer iterations" 6 outer_stats.Machine.ls_iterations;
  checki "outer entries" 1 outer_stats.Machine.ls_entries;
  checki "inner iterations" 18 inner_stats.Machine.ls_iterations;
  checki "inner entries" 6 inner_stats.Machine.ls_entries;
  check "outer work includes inner" true
    (outer_stats.Machine.ls_work > inner_stats.Machine.ls_work)

let test_while_loop_stats () =
  let config = { Machine.default_config with profile_loops = true } in
  let p = Parser.parse_program
    "int main() { int x = 0; while (x < 5) { x += 1; } return x; }" in
  let sid =
    match
      Query.select_stmts p (fun _ s ->
          match s.Ast.sdesc with Ast.While _ -> true | _ -> false)
    with
    | [ (_, s) ] -> s.Ast.sid
    | _ -> Alcotest.fail "expected one while loop"
  in
  let r = Machine.run ~config p in
  match Machine.find_loop_stats r sid with
  | Some stats ->
    checki "while iterations" 5 stats.Machine.ls_iterations;
    checki "while entries" 1 stats.Machine.ls_entries
  | None -> Alcotest.fail "while loop not profiled"

let region_src =
  "void knl(double* a, double* b, int n) {\n\
   for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0; }\n\
   }\n\
   int main() {\n\
   double a[10]; double b[10];\n\
   for (int i = 0; i < 10; i++) { a[i] = 1.0; }\n\
   knl(a, b, 10);\n\
   print_float(b[9]);\n\
   return 0; }"

let test_region_stats () =
  let config = { Machine.default_config with regions = [ Machine.Rfunc "knl" ] } in
  let r = run ~config region_src in
  let rs = Option.get (Machine.find_region_stats r (Machine.Rfunc "knl")) in
  checki "invocations" 1 rs.Machine.rs_invocations;
  checki "bytes in (a read)" 80 rs.Machine.rs_bytes_in;
  checki "bytes out (b written)" 80 rs.Machine.rs_bytes_out

let test_region_write_before_read_not_in () =
  (* elements written before being read are not input data *)
  let src =
    "void knl(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = 1.0; a[i] = a[i] + 1.0; } }\n\
     int main() { double a[4]; knl(a, 4); print_float(a[0]); return 0; }"
  in
  let config = { Machine.default_config with regions = [ Machine.Rfunc "knl" ] } in
  let r = run ~config src in
  let rs = Option.get (Machine.find_region_stats r (Machine.Rfunc "knl")) in
  checki "no input bytes" 0 rs.Machine.rs_bytes_in;
  checki "output bytes" 32 rs.Machine.rs_bytes_out

let test_region_local_arrays_excluded () =
  let src =
    "void knl(double* out) { double tmp[64]; for (int i = 0; i < 64; i++) { tmp[i] = 1.0; } out[0] = tmp[63]; }\n\
     int main() { double out[1]; knl(out); print_float(out[0]); return 0; }"
  in
  let config = { Machine.default_config with regions = [ Machine.Rfunc "knl" ] } in
  let r = run ~config src in
  let rs = Option.get (Machine.find_region_stats r (Machine.Rfunc "knl")) in
  checki "scratch array not transferred" 8 (rs.Machine.rs_bytes_in + rs.Machine.rs_bytes_out)

let test_region_invocations_accumulate () =
  let src =
    "void knl(double* a) { a[0] = a[0] + 1.0; }\n\
     int main() { double a[1]; a[0] = 0.0; for (int i = 0; i < 5; i++) { knl(a); } print_float(a[0]); return 0; }"
  in
  let config = { Machine.default_config with regions = [ Machine.Rfunc "knl" ] } in
  let r = run ~config src in
  let rs = Option.get (Machine.find_region_stats r (Machine.Rfunc "knl")) in
  checki "five invocations" 5 rs.Machine.rs_invocations;
  checki "in bytes accumulate" 40 rs.Machine.rs_bytes_in

let test_region_by_statement () =
  (* profiling a single statement as a region (Rstmt) *)
  let p = Parser.parse_program
    "int main() { double a[4]; for (int i = 0; i < 4; i++) { a[i] = 2.0; } print_float(a[0]); return 0; }" in
  let sid = (List.hd (Query.loops p)).Query.lm_stmt.Ast.sid in
  let config = { Machine.default_config with regions = [ Machine.Rstmt sid ] } in
  let r = Machine.run ~config p in
  (match Machine.find_region_stats r (Machine.Rstmt sid) with
   | Some rs ->
     checki "one invocation" 1 rs.Machine.rs_invocations;
     checki "writes 32 bytes" 32 rs.Machine.rs_bytes_out
   | None -> Alcotest.fail "statement region missing")

let test_memory_to_float_array () =
  let mem = Memory.create () in
  let ptr = Memory.alloc mem ~name:"v" ~elem_ty:Ast.Tint 3 in
  Memory.store mem ptr 1 (Value.Vint 7);
  Alcotest.(check (array (float 0.0))) "snapshot" [| 0.0; 7.0; 0.0 |]
    (Memory.to_float_array mem ptr.Value.base)

let test_value_coerce_errors () =
  check "pointer to int rejected" true
    (try ignore (Value.coerce (Ast.Tptr Ast.Tdouble) (Value.Vint 3)); false
     with Invalid_argument _ -> true)

let test_alias_detection () =
  let src =
    "void knl(double* a, double* b) { a[0] = b[0]; }\n\
     int main() { double x[2]; double y[2]; x[0] = 0.0; y[0] = 0.0; knl(x, y); knl(x, x); return 0; }"
  in
  let config = { Machine.default_config with trace_aliases = true } in
  let r = run ~config src in
  check "alias found" true (List.assoc "knl" r.Machine.aliased_funcs)

let test_no_alias () =
  let src =
    "void knl(double* a, double* b) { a[0] = b[0]; }\n\
     int main() { double x[2]; double y[2]; x[0] = 0.0; y[0] = 0.0; knl(x, y); return 0; }"
  in
  let config = { Machine.default_config with trace_aliases = true } in
  let r = run ~config src in
  check "no alias" false (List.assoc "knl" r.Machine.aliased_funcs)

let test_step_limit () =
  let config = { Machine.default_config with max_steps = 100 } in
  check "step limit enforced" true
    (try ignore (run ~config "int main() { int x = 0; while (true) { x += 1; } return x; }"); false
     with Machine.Step_limit_exceeded -> true)

let test_missing_entry () =
  check "missing entry raises" true
    (try ignore (run "void f() { }"); false with Machine.Runtime_error _ -> true)

let test_output_order () =
  Alcotest.(check (list string)) "output order" [ "1"; "2.5"; "3" ]
    (output "int main() { print_int(1); print_float(2.5); print_int(3); return 0; }")

let test_counters_scale () =
  let c = Counters.create () in
  c.Counters.flops_dp_add <- 3;
  c.Counters.bytes_loaded <- 10;
  let s = Counters.scale c 4 in
  checki "flops scaled" 12 s.Counters.flops_dp_add;
  checki "bytes scaled" 40 s.Counters.bytes_loaded

let test_counters_diff_add () =
  let a = Counters.create () and b = Counters.create () in
  a.Counters.loads <- 10;
  b.Counters.loads <- 4;
  let d = Counters.diff a b in
  checki "diff" 6 d.Counters.loads;
  Counters.add_into b d;
  checki "add_into" 10 b.Counters.loads

let test_value_demote () =
  check "demote rounds" true (Value.demote 0.1 <> 0.1);
  check "demote idempotent" true (Value.demote (Value.demote 0.1) = Value.demote 0.1)

let test_memory_distinct_bases () =
  let mem = Memory.create () in
  let p1 = Memory.alloc mem ~name:"a" ~elem_ty:Ast.Tdouble 4 in
  let p2 = Memory.alloc mem ~name:"b" ~elem_ty:Ast.Tdouble 4 in
  check "distinct bases" true (p1.Value.base <> p2.Value.base);
  Memory.store mem p1 0 (Value.Vfloat (Value.Dp, 5.0));
  check "no cross talk" true (Memory.load mem p2 0 = Value.Vfloat (Value.Dp, 0.0))

let suite =
  [
    Alcotest.test_case "int arithmetic" `Quick test_arith_int;
    Alcotest.test_case "int division truncates" `Quick test_int_division_truncates;
    Alcotest.test_case "mod" `Quick test_mod;
    Alcotest.test_case "division by zero" `Quick test_div_by_zero_raises;
    Alcotest.test_case "float arithmetic" `Quick test_float_arith;
    Alcotest.test_case "short circuit" `Quick test_bool_short_circuit;
    Alcotest.test_case "ternary" `Quick test_ternary;
    Alcotest.test_case "for sum" `Quick test_for_loop_sum;
    Alcotest.test_case "for step" `Quick test_for_loop_step;
    Alcotest.test_case "while" `Quick test_while_loop;
    Alcotest.test_case "break" `Quick test_break;
    Alcotest.test_case "continue" `Quick test_continue;
    Alcotest.test_case "function call" `Quick test_nested_function_call;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "array store/load" `Quick test_array_store_load;
    Alcotest.test_case "array bounds" `Quick test_array_out_of_bounds;
    Alcotest.test_case "array via pointer param" `Quick test_array_via_function;
    Alcotest.test_case "global array" `Quick test_global_array;
    Alcotest.test_case "global override" `Quick test_global_override;
    Alcotest.test_case "float array precision" `Quick test_float_array_precision;
    Alcotest.test_case "scope shadowing" `Quick test_shadowing_scopes;
    Alcotest.test_case "intrinsic sqrt" `Quick test_intrinsic_sqrt;
    Alcotest.test_case "intrinsic imin/imax" `Quick test_intrinsic_minmax;
    Alcotest.test_case "rand deterministic" `Quick test_intrinsic_rand_deterministic;
    Alcotest.test_case "rand seeded" `Quick test_intrinsic_rand_seed;
    Alcotest.test_case "erf accuracy" `Quick test_erf_accuracy;
    Alcotest.test_case "counters flops" `Quick test_counters_flops;
    Alcotest.test_case "counters sp vs dp" `Quick test_counters_sp_vs_dp;
    Alcotest.test_case "counters loads/stores" `Quick test_counters_loads_stores;
    Alcotest.test_case "counters specials" `Quick test_counters_specials;
    Alcotest.test_case "loop stats" `Quick test_loop_stats;
    Alcotest.test_case "while loop stats" `Quick test_while_loop_stats;
    Alcotest.test_case "region stats" `Quick test_region_stats;
    Alcotest.test_case "region write-before-read" `Quick test_region_write_before_read_not_in;
    Alcotest.test_case "region local arrays excluded" `Quick test_region_local_arrays_excluded;
    Alcotest.test_case "region invocations" `Quick test_region_invocations_accumulate;
    Alcotest.test_case "region by statement" `Quick test_region_by_statement;
    Alcotest.test_case "memory snapshot" `Quick test_memory_to_float_array;
    Alcotest.test_case "value coerce errors" `Quick test_value_coerce_errors;
    Alcotest.test_case "alias detection" `Quick test_alias_detection;
    Alcotest.test_case "no alias" `Quick test_no_alias;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "missing entry" `Quick test_missing_entry;
    Alcotest.test_case "output order" `Quick test_output_order;
    Alcotest.test_case "counters scale" `Quick test_counters_scale;
    Alcotest.test_case "counters diff/add" `Quick test_counters_diff_add;
    Alcotest.test_case "value demote" `Quick test_value_demote;
    Alcotest.test_case "memory distinct bases" `Quick test_memory_distinct_bases;
  ]
