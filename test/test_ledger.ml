(* Run ledger and flight recorder: schema round-trip, determinism of the
   stable record fields across --jobs levels, corruption tolerance on
   load, report/diff aggregation, and journal flushing on injected
   faults. *)

let check msg = Alcotest.(check bool) msg

let check_int msg = Alcotest.(check int) msg

let check_str msg = Alcotest.(check string) msg

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "psa-ledger-test-%d-%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let sample_record () =
  {
    Obs.Ledger.r_meta =
      {
        m_git_rev = "abcdef0123456789";
        m_cmdline = "psaflow run nbody --quick \"quoted\"";
        m_jobs = 4;
        m_unix_time = 1754650000.125;
      };
    r_stable =
      {
        s_kind = "run";
        s_app = "nbody";
        s_mode = "informed";
        s_workload = [ ("N", 64); ("STEPS", 1) ];
        s_backend = "vm";
        s_ir_version = 3;
        s_status = 3;
        s_decision = "gpu";
        s_best = Some "HIP 2080Ti";
        s_best_cost = Some 1.25e-7;
        s_designs =
          [
            {
              ds_target = "HIP 2080Ti";
              ds_device = "NVIDIA GeForce RTX 2080 Ti";
              ds_time_s = Some 0.000159;
              ds_speedup = Some 75.625;
              ds_feasible = true;
              ds_valid = true;
            };
            {
              ds_target = "oneAPI S10";
              ds_device = "Intel PAC Stratix 10";
              ds_time_s = None;
              ds_speedup = None;
              ds_feasible = false;
              ds_valid = false;
            };
          ];
        s_failures =
          [
            {
              fs_path = "fpga";
              fs_class = "timeout";
              fs_site = "FPGA/Generate oneAPI Design";
              fs_attempts = 3;
              fs_msg = "interpreter step budget exhausted\n(line two)";
            };
          ];
      };
    r_metrics =
      [
        ("cache.task.mem_hits", 30.0); ("cache.task.misses", 12.0);
        ("flow.retries", 2.0);
        ("flow.task.seconds.count", 34.0); ("flow.task.seconds.p50", 7.4e-05);
      ];
  }

(* ---- schema round-trip ---- *)

let test_roundtrip () =
  let r = sample_record () in
  let json = Obs.Ledger.to_json r in
  match Obs.Ledger.of_json json with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    check "record round-trips through its one-line JSON" true (r = r');
    check_str "serialization is deterministic" json (Obs.Ledger.to_json r');
    (* a future schema is rejected, not misread *)
    let bumped =
      Printf.sprintf "{\"schema\":%d,\"meta\":{},\"stable\":{}}"
        (Obs.Ledger.schema_version + 1)
    in
    check "foreign schema version is rejected" true
      (Result.is_error (Obs.Ledger.of_json bumped))

let test_append_load () =
  with_dir @@ fun dir ->
  let r = sample_record () in
  (match Obs.Ledger.append ~dir r with
  | Error e -> Alcotest.fail e
  | Ok path ->
    check "record file is published under the ledger dir" true
      (Sys.file_exists path && Filename.dirname path = dir));
  (match Obs.Ledger.append ~dir r with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  let recs, skipped = Obs.Ledger.load ~dir in
  check_int "both records load" 2 (List.length recs);
  check_int "nothing skipped" 0 skipped;
  check_int "count sees both files" 2 (Obs.Ledger.count ~dir);
  List.iter (fun r' -> check "loaded record equals appended" true (r = r')) recs

(* ---- stable fields byte-identical across --jobs ---- *)

let test_stable_across_jobs () =
  let saved_dir = Cache.dir () in
  let saved_jobs = Util.Pool.default_jobs () in
  Cache.set_dir None;
  Fun.protect ~finally:(fun () ->
      Cache.set_dir saved_dir;
      Util.Pool.set_default_jobs saved_jobs)
  @@ fun () ->
  let stable_at jobs =
    Util.Pool.set_default_jobs jobs;
    Cache.clear_memory ();
    match
      Engine.run ~workload:Nbody.app.App.app_test_overrides
        ~mode:Pipeline.Uninformed Nbody.app
    with
    | Error e -> Alcotest.fail e
    | Ok rep ->
      Obs.Ledger.stable_json
        (Run_record.of_report ~cmdline:"fixed" ~status:0 ~mode:Pipeline.Uninformed
           rep)
  in
  let reference = stable_at 1 in
  check "stable fields nonempty" true (String.length reference > 2);
  List.iter
    (fun jobs ->
      check_str
        (Printf.sprintf "stable record fields byte-identical at --jobs %d" jobs)
        reference (stable_at jobs))
    [ 4 ]

(* ---- corrupt / truncated record files are skipped, not fatal ---- *)

let test_corruption_skipped () =
  with_dir @@ fun dir ->
  let r = sample_record () in
  let path1 = Result.get_ok (Obs.Ledger.append ~dir r) in
  let _path2 = Result.get_ok (Obs.Ledger.append ~dir r) in
  let path3 = Result.get_ok (Obs.Ledger.append ~dir r) in
  (* flip one payload byte of the first record *)
  let contents = In_channel.with_open_bin path1 In_channel.input_all in
  let b = Bytes.of_string contents in
  let i = Bytes.length b - 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Out_channel.with_open_bin path1 (fun oc -> Out_channel.output_bytes oc b);
  (* truncate the third mid-payload *)
  let contents3 = In_channel.with_open_bin path3 In_channel.input_all in
  Out_channel.with_open_bin path3 (fun oc ->
      Out_channel.output_string oc
        (String.sub contents3 0 (String.length contents3 / 2)));
  let before = Obs.Metrics.find "ledger.skipped" in
  let recs, skipped = Obs.Ledger.load ~dir in
  check_int "one intact record survives" 1 (List.length recs);
  check_int "two damaged files skipped" 2 skipped;
  (match (before, Obs.Metrics.find "ledger.skipped") with
  | Some (Obs.Metrics.Count b), Some (Obs.Metrics.Count a) ->
    check_int "ledger.skipped counted the skips" 2 (a - b)
  | _ -> Alcotest.fail "ledger.skipped counter missing");
  (* a foreign-version record file is skipped the same way *)
  let r2, sk2 = Obs.Ledger.load ~dir in
  check "load is repeatable" true (List.length r2 = 1 && sk2 = 2)

let test_missing_dir_empty () =
  let dir = fresh_dir () in
  let recs, skipped = Obs.Ledger.load ~dir in
  check "missing directory is an empty ledger" true (recs = [] && skipped = 0);
  check_int "count of missing dir" 0 (Obs.Ledger.count ~dir)

(* ---- report / diff / stats over synthetic populations ---- *)

let test_report_empty () =
  let text = Obs.Ledger_report.report ([], 0) in
  check "empty-ledger report is a one-liner, not an error" true
    (text = "ledger: 0 records\n");
  let text = Obs.Ledger_report.report ([], 3) in
  check "skips are reported" true
    (text = "ledger: 0 records (3 skipped: corrupt or foreign version)\n")

let test_report_aggregates () =
  let r = sample_record () in
  let text = Obs.Ledger_report.report ([ r; r ], 0) in
  let has needle = contains ~needle text in
  check "population counted" true (has "ledger: 2 records");
  check "failure taxonomy present" true (has "timeout");
  check "cache hit rate reconstructed" true (has "cache:");
  check "latency percentiles reconstructed" true (has "flow.task.seconds");
  check "report is deterministic" true
    (text = Obs.Ledger_report.report ([ r; r ], 0))

let test_diff_regression () =
  let base = sample_record () in
  let ok =
    {
      base with
      Obs.Ledger.r_stable = { base.Obs.Ledger.r_stable with s_failures = [] };
      r_metrics = [ ("bench.section.runs", 1.0) ];
    }
  in
  (* identical populations: no regression *)
  let _, reg = Obs.Ledger_report.diff ~label_a:"A" ~label_b:"B" ([ ok ], 0) ([ ok ], 0) in
  check "identical ledgers do not regress" false reg;
  (* 2x slower section: regression *)
  let slow = { ok with Obs.Ledger.r_metrics = [ ("bench.section.runs", 2.0) ] } in
  let text, reg =
    Obs.Ledger_report.diff ~label_a:"A" ~label_b:"B" ([ ok ], 0) ([ slow ], 0)
  in
  check "2x slower section regresses" true reg;
  check "verdict line names the regression" true
    (contains ~needle:"verdict: REGRESSION" text);
  (* within tolerance: no regression *)
  let near = { ok with Obs.Ledger.r_metrics = [ ("bench.section.runs", 1.04) ] } in
  let _, reg =
    Obs.Ledger_report.diff ~label_a:"A" ~label_b:"B" ([ ok ], 0) ([ near ], 0)
  in
  check "growth within tolerance passes" false reg;
  (* a failure (class, site) pair absent from A: regression *)
  let failed =
    {
      ok with
      Obs.Ledger.r_stable =
        {
          ok.Obs.Ledger.r_stable with
          s_failures = base.Obs.Ledger.r_stable.s_failures;
        };
    }
  in
  let _, reg =
    Obs.Ledger_report.diff ~label_a:"A" ~label_b:"B" ([ ok ], 0) ([ failed ], 0)
  in
  check "new failure pair regresses" true reg

let test_stats_table () =
  let r = sample_record () in
  let text = Obs.Ledger_report.stats ([ r; r ], 0) in
  let lines = String.split_on_char '\n' text in
  check "stats has header + one (app, mode) row" true (List.length lines >= 3);
  check "row names the app" true
    (List.exists
       (fun l -> String.length l > 5 && String.sub l 0 5 = "nbody")
       lines)

(* ---- flight recorder: events survive to JSONL on faults ---- *)

let test_journal_flush_on_fault () =
  with_dir @@ fun dir ->
  Obs.Journal.clear ();
  (match Util.Faultsim.parse "task:journal-test@1,seed=7" with
  | Error e -> Alcotest.fail e
  | Ok spec -> Util.Faultsim.arm spec);
  Fun.protect ~finally:Util.Faultsim.disarm @@ fun () ->
  check "armed fault fires" true
    (Util.Faultsim.fire Util.Faultsim.Task_site ~site:"journal-test");
  let file = Filename.concat dir "fault.journal.jsonl" in
  Unix.mkdir dir 0o755;
  (match Obs.Journal.flush file with
  | Error e -> Alcotest.fail e
  | Ok n -> check "journal holds at least the fault event" true (n >= 1));
  let contents = In_channel.with_open_bin file In_channel.input_all in
  let lines =
    String.split_on_char '\n' contents |> List.filter (fun l -> l <> "")
  in
  check "journal flushed as JSONL" true (lines <> []);
  let fault_line =
    List.find_opt
      (fun l ->
        match Obs.Trace_json.parse l with
        | Ok j -> (
          match
            (Obs.Trace_json.member "kind" j, Obs.Trace_json.member "name" j)
          with
          | Some (Obs.Trace_json.Str "fault"), Some (Obs.Trace_json.Str site) ->
            site = "journal-test"
          | _ -> false)
        | Error _ -> false)
      lines
  in
  check "the injected fault is on the record" true (fault_line <> None)

let test_journal_ring_bounded () =
  Obs.Journal.clear ();
  for i = 1 to 2000 do
    Obs.Journal.record ~kind:"span" ~detail:"test" (Printf.sprintf "ev%d" i)
  done;
  let evs = Obs.Journal.events () in
  check "ring keeps a bounded recent window" true
    (List.length evs <= 512 && List.length evs > 0);
  (* the window is the most recent events, in order *)
  match List.rev evs with
  | last :: _ -> check_str "last event survives" "ev2000" last.Obs.Journal.jv_name
  | [] -> Alcotest.fail "no events"

let suite =
  [
    Alcotest.test_case "record JSON round-trip + version gate" `Quick test_roundtrip;
    Alcotest.test_case "append/load over a directory" `Quick test_append_load;
    Alcotest.test_case "stable fields byte-identical across --jobs" `Slow
      test_stable_across_jobs;
    Alcotest.test_case "corrupt/truncated records skipped, counted" `Quick
      test_corruption_skipped;
    Alcotest.test_case "missing dir is an empty ledger" `Quick test_missing_dir_empty;
    Alcotest.test_case "report on empty ledger" `Quick test_report_empty;
    Alcotest.test_case "report reconstructs rates and percentiles" `Quick
      test_report_aggregates;
    Alcotest.test_case "diff regression verdicts" `Quick test_diff_regression;
    Alcotest.test_case "stats population table" `Quick test_stats_table;
    Alcotest.test_case "journal captures injected faults to JSONL" `Quick
      test_journal_flush_on_fault;
    Alcotest.test_case "journal ring is bounded" `Quick test_journal_ring_bounded;
  ]
