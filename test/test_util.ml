(* Tests for the util library: PRNG, statistics, tables. *)

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

let test_prng_deterministic () =
  let a = Util.Prng.create 7 and b = Util.Prng.create 7 in
  for _ = 1 to 100 do
    check "same stream" true (Util.Prng.int64 a = Util.Prng.int64 b)
  done

let test_prng_seeds_differ () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  check "different seeds diverge" false (Util.Prng.int64 a = Util.Prng.int64 b)

let test_prng_uniform_range () =
  let t = Util.Prng.create 3 in
  for _ = 1 to 1000 do
    let u = Util.Prng.uniform t in
    check "uniform in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_prng_int_bound () =
  let t = Util.Prng.create 4 in
  for _ = 1 to 1000 do
    let n = Util.Prng.int t 17 in
    check "int in bound" true (n >= 0 && n < 17)
  done

let test_prng_uniform_mean () =
  let t = Util.Prng.create 5 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Util.Prng.uniform t
  done;
  let mean = !sum /. float_of_int n in
  check "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_prng_gaussian_moments () =
  let t = Util.Prng.create 6 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Util.Prng.gaussian t) in
  let mean = Util.Stats.mean xs in
  let sd = Util.Stats.stddev xs in
  check "gaussian mean ~0" true (Float.abs mean < 0.03);
  check "gaussian sd ~1" true (Float.abs (sd -. 1.0) < 0.03)

let test_prng_shuffle_permutation () =
  let t = Util.Prng.create 8 in
  let a = Array.init 50 Fun.id in
  Util.Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_split_independent () =
  let t = Util.Prng.create 9 in
  let u = Util.Prng.split t in
  check "split streams differ" false (Util.Prng.int64 t = Util.Prng.int64 u)

let test_stats_mean () = checkf "mean" 2.0 (Util.Stats.mean [| 1.0; 2.0; 3.0 |])
let test_stats_mean_empty () = checkf "mean of empty" 0.0 (Util.Stats.mean [||])

let test_stats_geomean () =
  checkf "geomean of 1,2,4" 2.0 (Util.Stats.geomean [| 1.0; 2.0; 4.0 |]);
  checkf "geomean of empty" 0.0 (Util.Stats.geomean [||])

let test_stats_median_odd () = checkf "median odd" 3.0 (Util.Stats.median [| 5.0; 1.0; 3.0 |])

let test_stats_median_even () =
  checkf "median even" 2.5 (Util.Stats.median [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  checkf "p0" 10.0 (Util.Stats.percentile a 0.0);
  checkf "p100" 50.0 (Util.Stats.percentile a 100.0);
  checkf "p50" 30.0 (Util.Stats.percentile a 50.0)

let test_stats_stddev () =
  checkf "stddev" 2.0 (Util.Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_argmin_argmax () =
  let l = [ 3; 1; 4; 1; 5 ] in
  checki "argmin" 1 (Option.get (Util.Stats.argmin float_of_int l));
  checki "argmax" 5 (Option.get (Util.Stats.argmax float_of_int l));
  check "argmin empty" true (Util.Stats.argmin float_of_int [] = None)

let test_stats_clamp () =
  checkf "clamp low" 0.0 (Util.Stats.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  checkf "clamp high" 1.0 (Util.Stats.clamp ~lo:0.0 ~hi:1.0 5.0);
  checkf "clamp mid" 0.5 (Util.Stats.clamp ~lo:0.0 ~hi:1.0 0.5)

let test_stats_round_sig () =
  checkf "round 3 sig" 123.0 (Util.Stats.round_sig 3 123.456);
  checkf "round small" 0.00123 (Util.Stats.round_sig 3 0.0012345);
  checkf "round zero" 0.0 (Util.Stats.round_sig 3 0.0)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_table_render () =
  let t = Util.Table.create ~headers:[ "a"; "b" ] in
  Util.Table.add_row t [ "1"; "22" ];
  Util.Table.add_row t [ "333" ];
  let text = Util.Table.render t in
  check "contains 22" true (contains ~needle:"22" text);
  check "contains 333" true (contains ~needle:"333" text);
  check "has enough lines" true (List.length (String.split_on_char '\n' text) > 4)

let test_table_alignment () =
  let t = Util.Table.create ~headers:[ "n" ] in
  Util.Table.set_aligns t [ Util.Table.Right ];
  Util.Table.add_row t [ "7" ];
  Util.Table.add_row t [ "1000" ];
  let lines = String.split_on_char '\n' (Util.Table.render t) in
  (* the short value must be right-aligned: "|    7 |" *)
  check "right aligned" true (List.exists (fun l -> l = "|    7 |") lines)

let test_table_separator () =
  let t = Util.Table.create ~headers:[ "x" ] in
  Util.Table.add_row t [ "1" ];
  Util.Table.add_separator t;
  Util.Table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Util.Table.render t) in
  let rules = List.filter (fun l -> String.length l > 0 && l.[0] = '+') lines in
  Alcotest.(check int) "separator adds a rule" 4 (List.length rules)

(* ---- diff ---- *)

let test_diff_equal_texts () =
  Alcotest.(check string) "no hunks" "" (Util.Diff.unified ~old_text:"a\nb\nc" "a\nb\nc")

let test_diff_add_drop () =
  let ops = Util.Diff.diff_lines [ "a"; "b"; "c" ] [ "a"; "x"; "c" ] in
  check "keeps a and c" true
    (List.mem (Util.Diff.Keep "a") ops && List.mem (Util.Diff.Keep "c") ops);
  check "drops b" true (List.mem (Util.Diff.Drop "b") ops);
  check "adds x" true (List.mem (Util.Diff.Add "x") ops)

let test_diff_stats () =
  let add, drop = Util.Diff.stats "a\nb\nc" "a\nc\nd\ne" in
  checki "added" 2 add;
  checki "removed" 1 drop

let test_diff_unified_format () =
  let u = Util.Diff.unified ~old_text:"one\ntwo\nthree\nfour\nfive" "one\ntwo\nTHREE\nfour\nfive" in
  check "has hunk header" true (contains ~needle:"@@" u);
  check "has removal" true (contains ~needle:"-three" u);
  check "has addition" true (contains ~needle:"+THREE" u);
  check "has context" true (contains ~needle:" two" u)

let qcheck_diff_reconstructs =
  QCheck.Test.make ~name:"diff ops reconstruct both inputs" ~count:200
    QCheck.(pair (list (string_gen_of_size (Gen.return 1) Gen.(map Char.chr (97 -- 99))))
              (list (string_gen_of_size (Gen.return 1) Gen.(map Char.chr (97 -- 99)))))
    (fun (old_l, new_l) ->
      let ops = Util.Diff.diff_lines old_l new_l in
      let olds =
        List.filter_map
          (function Util.Diff.Keep l | Util.Diff.Drop l -> Some l | Util.Diff.Add _ -> None)
          ops
      in
      let news =
        List.filter_map
          (function Util.Diff.Keep l | Util.Diff.Add l -> Some l | Util.Diff.Drop _ -> None)
          ops
      in
      olds = old_l && news = new_l)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_inclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (l, p) ->
      let a = Array.of_list l in
      let v = Util.Stats.percentile a p in
      v >= Util.Stats.minimum a -. 1e-9 && v <= Util.Stats.maximum a +. 1e-9)

let qcheck_prng_int_bound =
  QCheck.Test.make ~name:"prng int respects bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Util.Prng.create seed in
      let v = Util.Prng.int t bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng uniform range" `Quick test_prng_uniform_range;
    Alcotest.test_case "prng int bound" `Quick test_prng_int_bound;
    Alcotest.test_case "prng uniform mean" `Quick test_prng_uniform_mean;
    Alcotest.test_case "prng gaussian moments" `Quick test_prng_gaussian_moments;
    Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats mean empty" `Quick test_stats_mean_empty;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats median odd" `Quick test_stats_median_odd;
    Alcotest.test_case "stats median even" `Quick test_stats_median_even;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats argmin/argmax" `Quick test_stats_argmin_argmax;
    Alcotest.test_case "stats clamp" `Quick test_stats_clamp;
    Alcotest.test_case "stats round_sig" `Quick test_stats_round_sig;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table separator" `Quick test_table_separator;
    Alcotest.test_case "diff equal texts" `Quick test_diff_equal_texts;
    Alcotest.test_case "diff add/drop" `Quick test_diff_add_drop;
    Alcotest.test_case "diff stats" `Quick test_diff_stats;
    Alcotest.test_case "diff unified format" `Quick test_diff_unified_format;
    QCheck_alcotest.to_alcotest qcheck_diff_reconstructs;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
    QCheck_alcotest.to_alcotest qcheck_prng_int_bound;
  ]
