(* Tests for the two-tier evaluation cache: disk round trips, corrupted /
   version-mismatched / relabelled entries falling back to misses, size-cap
   eviction, single-flight dedup across domains, and the end-to-end
   differential guarantee that `--cache off`, a cold cache and a warm cache
   all produce identical reports and designs. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Every test runs with the disk tier pointed at a private temp directory
   and restores the global state afterwards, so the remaining suites keep
   seeing the default (disabled) cache. *)
let tmp_counter = ref 0

let with_cache_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "psa-cache-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let old_dir = Cache.dir () in
  let old_cap = Cache.max_bytes () in
  Cache.set_dir (Some dir);
  Cache.clear_memory ();
  Cache.reset_stats ();
  Fun.protect
    ~finally:(fun () ->
      Cache.set_dir old_dir;
      Cache.set_max_bytes old_cap;
      Cache.clear_memory ();
      Cache.reset_stats ();
      (match Sys.readdir dir with
       | names ->
         Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ()) names;
         (try Unix.rmdir dir with Unix.Unix_error _ -> ())
       | exception Sys_error _ -> ()))
    (fun () -> f dir)

module Ints = Cache.Make (struct
  type value = int

  let kind = "tint"

  let version = 1
end)

(* same kind as [Ints], newer version: its lookups must never replay
   entries recorded under version 1 *)
module Ints_v2 = Cache.Make (struct
  type value = int

  let kind = "tint"

  let version = 2
end)

let count = ref 0

let compute v () =
  incr count;
  v

let test_disk_round_trip () =
  with_cache_dir (fun _dir ->
      count := 0;
      checki "computed" 41 (Ints.find_or_compute ~key:"rt" (compute 41));
      checki "memory hit" 41 (Ints.find_or_compute ~key:"rt" (compute 0));
      Cache.clear_memory ();
      checki "disk hit" 41 (Ints.find_or_compute ~key:"rt" (compute 0));
      checki "one computation" 1 !count;
      let s = Ints.stats () in
      checki "one miss" 1 s.Cache.misses;
      checki "one memory hit" 1 s.Cache.mem_hits;
      checki "one disk hit" 1 s.Cache.disk_hits;
      check "bytes written" true (s.Cache.bytes_written > 0);
      check "bytes read" true (s.Cache.bytes_read > 0))

let entry_path ~version ~key =
  match Cache.entry_path ~kind:"tint" ~version ~key with
  | Some p -> p
  | None -> Alcotest.fail "disk tier should be enabled"

let overwrite path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let test_corrupted_entry_is_a_miss () =
  with_cache_dir (fun _dir ->
      count := 0;
      ignore (Ints.find_or_compute ~key:"c" (compute 7));
      let path = entry_path ~version:1 ~key:"c" in
      check "entry exists" true (Sys.file_exists path);
      overwrite path "this is not a cache entry";
      Cache.clear_memory ();
      checki "recomputed" 7 (Ints.find_or_compute ~key:"c" (compute 7));
      checki "two computations" 2 !count;
      let s = Ints.stats () in
      check "corruption counted" true (s.Cache.corrupt >= 1);
      checki "not a hit, not a write error" 0 s.Cache.errors;
      checki "no disk hit from the corrupted entry" 0 s.Cache.disk_hits;
      (* the recompute rewrote a valid entry *)
      Cache.clear_memory ();
      checki "disk hit after rewrite" 7 (Ints.find_or_compute ~key:"c" (compute 0));
      checki "still two computations" 2 !count)

let test_truncated_entry_is_a_miss () =
  with_cache_dir (fun _dir ->
      count := 0;
      ignore (Ints.find_or_compute ~key:"t" (compute 9));
      let path = entry_path ~version:1 ~key:"t" in
      let full = In_channel.with_open_bin path In_channel.input_all in
      overwrite path (String.sub full 0 3);
      Cache.clear_memory ();
      checki "recomputed" 9 (Ints.find_or_compute ~key:"t" (compute 9));
      checki "two computations" 2 !count)

let copy src dst = overwrite dst (In_channel.with_open_bin src In_channel.input_all)

let test_version_mismatch_is_a_miss () =
  with_cache_dir (fun _dir ->
      count := 0;
      ignore (Ints.find_or_compute ~key:"v" (compute 11));
      (* masquerade the v1 entry as a v2 one: the header still says v1, so
         the v2 instance must reject it and recompute *)
      copy (entry_path ~version:1 ~key:"v") (entry_path ~version:2 ~key:"v");
      checki "recomputed under v2" 11 (Ints_v2.find_or_compute ~key:"v" (compute 11));
      checki "two computations" 2 !count;
      check "mismatch counted as corruption" true
        ((Ints_v2.stats ()).Cache.corrupt >= 1))

let test_relabelled_key_is_a_miss () =
  with_cache_dir (fun _dir ->
      count := 0;
      ignore (Ints.find_or_compute ~key:"a" (compute 13));
      Cache.clear_memory ();
      (* an entry filed under another key's digest must not be served *)
      copy (entry_path ~version:1 ~key:"a") (entry_path ~version:1 ~key:"b");
      checki "recomputed" 99 (Ints.find_or_compute ~key:"b" (compute 99));
      checki "two computations" 2 !count)

let test_disabled_cache_is_passthrough () =
  let old = Cache.dir () in
  Cache.set_dir None;
  Fun.protect
    ~finally:(fun () -> Cache.set_dir old)
    (fun () ->
      count := 0;
      (* the memory tier still dedups, but nothing touches the disk *)
      ignore (Ints.find_or_compute ~key:"off" (compute 1));
      check "no path when disabled" true
        (Cache.entry_path ~kind:"tint" ~version:1 ~key:"off" = None))

let test_eviction_respects_cap () =
  with_cache_dir (fun dir ->
      Cache.set_max_bytes 512;
      let payload = String.make 200 'x' in
      for i = 1 to 8 do
        ignore
          (Ints.find_or_compute
             ~key:(Printf.sprintf "evict-%d" i)
             (fun () ->
               ignore (Digest.string payload);
               i))
      done;
      check "evictions happened" true ((Ints.stats ()).Cache.evictions > 0);
      let total =
        Array.fold_left
          (fun acc name ->
            acc + (Unix.stat (Filename.concat dir name)).Unix.st_size)
          0 (Sys.readdir dir)
      in
      check "directory under cap" true (total <= 512))

let test_single_flight_dedup () =
  with_cache_dir (fun _dir ->
      let computations = Atomic.make 0 in
      let slow_compute () =
        Atomic.incr computations;
        Unix.sleepf 0.05;
        123
      in
      let worker () =
        Domain.spawn (fun () -> Ints.find_or_compute ~key:"sf" slow_compute)
      in
      let domains = List.init 4 (fun _ -> worker ()) in
      let results = List.map Domain.join domains in
      check "all workers agree" true (List.for_all (( = ) 123) results);
      checki "exactly one computation" 1 (Atomic.get computations))

let test_failed_compute_is_not_cached () =
  with_cache_dir (fun _dir ->
      count := 0;
      (match Ints.find_or_compute ~key:"fail" (fun () -> failwith "boom") with
       | _ -> Alcotest.fail "exception expected"
       | exception Failure m -> checks "exception propagates" "boom" m);
      (* the failure released the slot: the next request computes fresh *)
      checki "recovers" 5 (Ints.find_or_compute ~key:"fail" (compute 5));
      checki "one successful computation" 1 !count)

(* ---- differential: off / cold / warm runs are indistinguishable ---- *)

type observed = {
  ob_table : string;
  ob_decision : string;
  ob_summary : string;
  ob_designs :
    (string * (string * string) list * bool * bool * float option * float option
    * float * bool * string)
    list;
}

let observe (rep : Engine.report) =
  {
    ob_table = Report.design_table rep;
    ob_decision = Report.decision_text rep;
    ob_summary = Report.summary_line rep;
    ob_designs =
      List.map
        (fun (d : Design.t) ->
          ( Target.short d.Design.d_target,
            d.Design.d_path,
            d.Design.d_sp,
            d.Design.d_feasible,
            d.Design.d_time_s,
            d.Design.d_speedup,
            d.Design.d_loc_added_pct,
            d.Design.d_valid,
            Pretty.program_to_string d.Design.d_program ))
        rep.Engine.rep_designs;
  }

let uninformed_observed () =
  let app = Nbody.app in
  match
    Engine.run ~workload:app.App.app_test_overrides ~mode:Pipeline.Uninformed app
  with
  | Ok rep -> observe rep
  | Error e -> Alcotest.fail e

let test_differential_off_cold_warm () =
  let old = Cache.dir () in
  Cache.set_dir None;
  let off =
    Fun.protect ~finally:(fun () -> Cache.set_dir old) uninformed_observed
  in
  with_cache_dir (fun _dir ->
      let cold = uninformed_observed () in
      (* drop every memory tier so the warm run must go through the disk *)
      Cache.clear_memory ();
      Cache.reset_stats ();
      let warm = uninformed_observed () in
      let s = Cache.stats () in
      check "warm run hit the disk tier" true (s.Cache.disk_hits > 0);
      checks "cold table = off table" off.ob_table cold.ob_table;
      checks "warm table = off table" off.ob_table warm.ob_table;
      checks "cold decision = off decision" off.ob_decision cold.ob_decision;
      checks "warm decision = off decision" off.ob_decision warm.ob_decision;
      checks "cold summary = off summary" off.ob_summary cold.ob_summary;
      checks "warm summary = off summary" off.ob_summary warm.ob_summary;
      checki "design count stable" (List.length off.ob_designs)
        (List.length warm.ob_designs);
      List.iteri
        (fun i ((t_off, _, _, _, _, _, _, _, src_off) as d_off) ->
          let d_cold = List.nth cold.ob_designs i in
          let d_warm = List.nth warm.ob_designs i in
          check (Printf.sprintf "design %s identical cold" t_off) true
            (d_off = d_cold);
          let (_, _, _, _, _, _, _, _, src_warm) = d_warm in
          checks (Printf.sprintf "design %s source identical warm" t_off)
            src_off src_warm;
          check (Printf.sprintf "design %s identical warm" t_off) true
            (d_off = d_warm))
        off.ob_designs)

let suite =
  [
    Alcotest.test_case "disk round trip" `Quick test_disk_round_trip;
    Alcotest.test_case "corrupted entry is a miss" `Quick test_corrupted_entry_is_a_miss;
    Alcotest.test_case "truncated entry is a miss" `Quick test_truncated_entry_is_a_miss;
    Alcotest.test_case "version mismatch is a miss" `Quick test_version_mismatch_is_a_miss;
    Alcotest.test_case "relabelled key is a miss" `Quick test_relabelled_key_is_a_miss;
    Alcotest.test_case "disabled cache is passthrough" `Quick test_disabled_cache_is_passthrough;
    Alcotest.test_case "eviction respects cap" `Quick test_eviction_respects_cap;
    Alcotest.test_case "single-flight dedup" `Quick test_single_flight_dedup;
    Alcotest.test_case "failed compute not cached" `Quick test_failed_compute_is_not_cached;
    Alcotest.test_case "differential off/cold/warm" `Slow test_differential_off_cold_warm;
  ]
