(* Tests for the fault-tolerance layer: the fault-spec parser and the
   occurrence/probability firing semantics of Util.Faultsim, branch
   pruning with Sfailed provenance under injected task faults, retry
   accounting, step-budget timeout determinism across --jobs levels,
   strict fail-fast, pool worker-crash recovery, and cache corruption
   injection landing in the `corrupt` stat. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let counter_value name = Obs.Metrics.Counter.value (Obs.Metrics.counter name)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl = 0 || at 0

(* Every test disarms the harness on exit so the remaining suites (and a
   crashed assertion) never leave faults armed. *)
let with_faults spec_str f =
  (match Util.Faultsim.parse spec_str with
   | Ok spec -> Util.Faultsim.arm spec
   | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Util.Faultsim.disarm f

(* ---- spec parser ---- *)

let test_parse_ok () =
  match Util.Faultsim.parse "task:GPU-2080@2%0.5, cache:task ,pool:,seed=9" with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    checki "seed" 9 spec.Util.Faultsim.sp_seed;
    (match spec.Util.Faultsim.sp_rules with
     | [ r1; r2; r3 ] ->
       check "r1 class" true (r1.Util.Faultsim.ru_target = Util.Faultsim.Task_site);
       checks "r1 site" "GPU-2080" r1.Util.Faultsim.ru_site;
       check "r1 nth" true (r1.Util.Faultsim.ru_nth = Some 2);
       check "r1 prob" true (r1.Util.Faultsim.ru_prob = Some 0.5);
       check "r2 class" true (r2.Util.Faultsim.ru_target = Util.Faultsim.Cache_site);
       checks "r2 site" "task" r2.Util.Faultsim.ru_site;
       check "r2 unconditional" true
         (r2.Util.Faultsim.ru_nth = None && r2.Util.Faultsim.ru_prob = None);
       (* a bare pool rule defaults its site to "worker" *)
       checks "r3 site" "worker" r3.Util.Faultsim.ru_site
     | rules -> Alcotest.failf "expected 3 rules, got %d" (List.length rules))

let test_parse_errors () =
  let bad s =
    match Util.Faultsim.parse s with
    | Ok _ -> Alcotest.failf "spec %S should be rejected" s
    | Error e -> check (Printf.sprintf "%S error non-empty" s) true (String.length e > 0)
  in
  bad "";
  bad "frobnicate:x";
  bad "task:x@zero";
  bad "task:x%often";
  bad "task:x@0";
  bad "seed=lots"

(* ---- firing semantics ---- *)

let test_nth_occurrence () =
  with_faults "task:flaky@2" (fun () ->
      let f () = Util.Faultsim.fire Util.Faultsim.Task_site ~site:"T-INDEP/flaky" in
      check "1st pull survives" false (f ());
      check "2nd pull fires" true (f ());
      check "3rd pull survives" false (f ());
      (* a non-matching site never advances the rule *)
      check "other site" false
        (Util.Faultsim.fire Util.Faultsim.Task_site ~site:"T-INDEP/solid"))

let test_probabilistic_replay () =
  (* a probabilistic rule must make the same per-occurrence decisions
     every time the same spec is armed: the draw depends only on
     (site, occurrence, seed), never on interleaving or prior state *)
  let draw () =
    with_faults "task:p%0.5,seed=3" (fun () ->
        List.init 32 (fun _ ->
            Util.Faultsim.fire Util.Faultsim.Task_site ~site:"GPU/p"))
  in
  let a = draw () in
  let b = draw () in
  check "replay identical" true (a = b);
  check "some fire" true (List.mem true a);
  check "some survive" true (List.mem false a)

(* ---- engine-level fault tolerance ---- *)

let run_nbody ?(strict = false) () =
  (* the task/run caches are process-global memory tiers shared with the
     other suites: drop them so every application actually crosses the
     fault-injection boundary instead of replaying a cached result *)
  Cache.clear_memory ();
  Engine.run ~workload:Nbody.app.App.app_test_overrides ~strict
    ~mode:Pipeline.Uninformed Nbody.app

let test_task_fault_prunes_one_branch () =
  let failures0 = counter_value "flow.task.failures" in
  with_faults "task:GPU-2080" (fun () ->
      match run_nbody () with
      | Error e -> Alcotest.fail e
      | Ok rep ->
        (* uninformed nbody normally yields 5 designs; the injected fault
           must prune exactly the 2080 path *)
        checki "four designs survive" 4 (List.length rep.Engine.rep_designs);
        check "2080 design gone" true (Engine.design_for rep ~short:"HIP 2080Ti" = None);
        check "1080 design survives" true
          (Engine.design_for rep ~short:"HIP 1080Ti" <> None
           || List.length rep.Engine.rep_designs = 4);
        (match rep.Engine.rep_failures with
         | [ f ] ->
           check "pruned path is A=gpu,C=2080" true
             (f.Graph.fl_path = [ ("A", "gpu"); ("C", "2080") ]);
           check "classified task-failed" true
             (f.Graph.fl_failure.Resilience.f_class = Resilience.Task_failed);
           checki "both attempts consumed" 2 f.Graph.fl_failure.Resilience.f_attempts;
           check "trail ends in Sfailed" true
             (match List.rev f.Graph.fl_prov with
              | Prov.Sfailed _ :: _ -> true
              | _ -> false)
         | fs -> Alcotest.failf "expected 1 pruned path, got %d" (List.length fs));
        let why = Report.why_text rep in
        check "--why shows the pruned trail" true
          (contains ~needle:"pruned" why
           && contains ~needle:"injected fault" why);
        check "failures line rendered" true
          (contains ~needle:"task-failed" (Report.failures_text rep));
        check "flow.task.failures incremented" true
          (counter_value "flow.task.failures" > failures0))

let test_retry_succeeds_second_attempt () =
  let retries0 = counter_value "flow.retries" in
  with_faults "task:GPU-2080@1" (fun () ->
      match run_nbody () with
      | Error e -> Alcotest.fail e
      | Ok rep ->
        checki "all five designs" 5 (List.length rep.Engine.rep_designs);
        checki "no pruned paths" 0 (List.length rep.Engine.rep_failures);
        check "flow.retries incremented" true (counter_value "flow.retries" > retries0))

let test_strict_aborts () =
  with_faults "task:GPU-2080" (fun () ->
      match run_nbody ~strict:true () with
      | Ok _ -> Alcotest.fail "--strict must abort on an injected fault"
      | Error msg ->
        check "error names the fault" true (contains ~needle:"injected fault" msg))

let test_step_budget_timeout_deterministic () =
  (* a tiny step budget blows every interpreting task in the fan-out;
     the resulting report must be identical at --jobs 1 and --jobs 4 *)
  let old_jobs = Util.Pool.default_jobs () in
  let old_policy = Resilience.policy () in
  Resilience.set_policy
    { Resilience.default_policy with Resilience.pol_step_budget = Some 50 };
  Fun.protect
    ~finally:(fun () ->
      Resilience.set_policy old_policy;
      Util.Pool.set_default_jobs old_jobs)
    (fun () ->
      let observe jobs =
        Util.Pool.set_default_jobs jobs;
        match run_nbody () with
        | Error e -> Alcotest.fail e
        | Ok rep ->
          ( List.map (fun (d : Design.t) -> Target.short d.Design.d_target)
              rep.Engine.rep_designs,
            Report.failures_text rep,
            Report.why_text rep )
      in
      let d1, f1, w1 = observe 1 in
      let d4, f4, w4 = observe 4 in
      check "timeouts fired" true
        (contains ~needle:"timeout" f1);
      check "budget named in message" true
        (contains ~needle:"step budget" f1);
      check "designs identical across jobs" true (d1 = d4);
      checks "failure lines identical across jobs" f1 f4;
      checks "why trails identical across jobs" w1 w4)

(* the first line of --why names the active backend; drop it so trails
   can be compared byte-for-byte across backends *)
let drop_backend_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let test_nested_budget_fault_backend_invariant () =
  (* K-Means' hot loops run as planned multi-level nests on the VM.  A
     step budget small enough to blow mid-nest makes every planned entry
     fail the guard's budget pre-check — a pre-effect bail — and the
     closure path then aborts mid-outer-iteration; an injected task fault
     prunes one accelerator branch on top.  The pruned report must be
     identical whatever backend interprets and at --jobs 1 and 4: a bail
     that committed partial steps, counters or writes would diverge
     here. *)
  let old_jobs = Util.Pool.default_jobs () in
  let old_policy = Resilience.policy () in
  Resilience.set_policy
    { Resilience.default_policy with Resilience.pol_step_budget = Some 500 };
  Fun.protect
    ~finally:(fun () ->
      Resilience.set_policy old_policy;
      Util.Pool.set_default_jobs old_jobs)
    (fun () ->
      let observe backend jobs =
        let saved = Machine.default_backend () in
        Machine.set_default_backend backend;
        Fun.protect
          ~finally:(fun () -> Machine.set_default_backend saved)
          (fun () ->
            Util.Pool.set_default_jobs jobs;
            with_faults "task:GPU-2080" (fun () ->
                Cache.clear_memory ();
                match
                  Engine.run ~workload:Kmeans.app.App.app_test_overrides
                    ~mode:Pipeline.Uninformed Kmeans.app
                with
                | Error e -> Alcotest.fail e
                | Ok rep ->
                  ( List.map
                      (fun (d : Design.t) -> Target.short d.Design.d_target)
                      rep.Engine.rep_designs,
                    Report.failures_text rep,
                    drop_backend_line (Report.why_text rep) )))
      in
      let d1, f1, w1 = observe `Vm 1 in
      let d4, f4, w4 = observe `Vm 4 in
      let da, fa, wa = observe `Ast 1 in
      check "budget timeouts fired" true (contains ~needle:"step budget" f1);
      check "designs identical across jobs" true (d1 = d4);
      checks "failure lines identical across jobs" f1 f4;
      checks "why trails identical across jobs" w1 w4;
      check "designs identical across backends" true (d1 = da);
      checks "failure lines identical across backends" f1 fa;
      checks "why trails identical across backends" w1 wa)

(* ---- pool worker crash recovery ---- *)

let test_pool_worker_crash_recovered () =
  let crashes0 = counter_value "pool.worker_failures" in
  with_faults "pool:worker@1" (fun () ->
      let pool = Util.Pool.create ~jobs:4 in
      let input = List.init 64 Fun.id in
      let out = Util.Pool.map ~pool (fun x -> (x * x) + 1) input in
      check "results identical to List.map" true
        (out = List.map (fun x -> (x * x) + 1) input);
      check "worker failure counted" true
        (counter_value "pool.worker_failures" > crashes0))

(* A crash on a *stolen* task: the main domain spawns futures into its
   own deque and deliberately does not touch them, so the only way a
   worker obtains one is by stealing — and the first fire
   (pool:worker@1) therefore kills a worker holding a stolen claim.
   The awaiting domain must detect the dead claimant, recompute the
   task, and still return List.map's answer. *)
let test_stolen_task_crash_recovered () =
  let steals0 = counter_value "pool.steals" in
  let crashes0 = counter_value "pool.worker_failures" in
  let saved = Util.Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs saved) @@ fun () ->
  with_faults "pool:worker@1" (fun () ->
      Util.Pool.set_default_jobs 4;
      let input = List.init 32 Fun.id in
      let futs =
        List.map (fun x -> Util.Pool.Fut.spawn (fun () -> (3 * x) + 1)) input
      in
      (* wait (bounded) for a worker to steal a claim and crash on it
         before this domain starts awaiting, so the lost task is a
         stolen one rather than one we ran inline *)
      let deadline = Obs.Monotonic.now_s () +. 5.0 in
      while
        counter_value "pool.worker_failures" = crashes0
        && Obs.Monotonic.now_s () < deadline
      do
        Domain.cpu_relax ()
      done;
      let out = Util.Pool.Fut.await_all futs in
      check "results identical to List.map" true
        (out = List.map (fun x -> (3 * x) + 1) input);
      check "tasks were stolen" true (counter_value "pool.steals" > steals0);
      check "worker failure counted" true
        (counter_value "pool.worker_failures" > crashes0))

(* ---- cache corruption injection ---- *)

module Res_cache = Cache.Make (struct
  type value = int

  let kind = "tres"

  let version = 1
end)

let test_cache_corruption_injected () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "psa-faultsim-test-%d" (Unix.getpid ()))
  in
  let old_dir = Cache.dir () in
  Cache.set_dir (Some dir);
  Cache.clear_memory ();
  Fun.protect
    ~finally:(fun () ->
      Cache.set_dir old_dir;
      Cache.clear_memory ();
      (match Sys.readdir dir with
       | names ->
         Array.iter
           (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
           names;
         (try Unix.rmdir dir with Unix.Unix_error _ -> ())
       | exception Sys_error _ -> ()))
    (fun () ->
      let count = ref 0 in
      let compute () = incr count; 17 in
      checki "computed" 17 (Res_cache.find_or_compute ~key:"k" compute);
      Cache.clear_memory ();
      let corrupt0 = (Res_cache.stats ()).Cache.corrupt in
      with_faults "cache:tres" (fun () ->
          checki "recomputed past the corrupted read" 17
            (Res_cache.find_or_compute ~key:"k" compute));
      checki "two computations" 2 !count;
      let s = Res_cache.stats () in
      check "corruption counted" true (s.Cache.corrupt > corrupt0);
      (* the recompute rewrote the entry; with faults disarmed it serves *)
      Cache.clear_memory ();
      checki "disk hit after rewrite" 17
        (Res_cache.find_or_compute ~key:"k" (fun () -> Alcotest.fail "cached"));
      checki "still two computations" 2 !count)

let suite =
  [
    Alcotest.test_case "fault spec parses" `Quick test_parse_ok;
    Alcotest.test_case "fault spec rejects garbage" `Quick test_parse_errors;
    Alcotest.test_case "nth occurrence fires once" `Quick test_nth_occurrence;
    Alcotest.test_case "probabilistic rules replay" `Quick test_probabilistic_replay;
    Alcotest.test_case "task fault prunes one branch" `Slow test_task_fault_prunes_one_branch;
    Alcotest.test_case "retry succeeds on 2nd attempt" `Slow test_retry_succeeds_second_attempt;
    Alcotest.test_case "strict restores fail-fast" `Slow test_strict_aborts;
    Alcotest.test_case "step-budget timeout deterministic" `Slow
      test_step_budget_timeout_deterministic;
    Alcotest.test_case "nested budget+fault backend-invariant" `Slow
      test_nested_budget_fault_backend_invariant;
    Alcotest.test_case "pool worker crash recovered" `Quick test_pool_worker_crash_recovered;
    Alcotest.test_case "stolen task crash recovered" `Quick
      test_stolen_task_crash_recovered;
    Alcotest.test_case "cache corruption injected" `Quick test_cache_corruption_injected;
  ]
