let () =
  Alcotest.run "repro"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("srclang", Test_srclang.suite);
      ("interp", Test_interp.suite);
      ("compile", Test_compile.suite);
      ("memo", Test_memo.suite);
      ("cache", Test_cache.suite);
      ("analysis", Test_analysis.suite);
      ("devices", Test_devices.suite);
      ("codegen", Test_codegen.suite);
      ("dse", Test_dse.suite);
      ("apps", Test_apps.suite);
      ("flow", Test_flow.suite);
      ("resilience", Test_resilience.suite);
      ("properties", Test_props.suite);
      ("obs", Test_obs.suite);
      ("ledger", Test_ledger.suite);
      ("serve", Test_serve.suite);
    ]
