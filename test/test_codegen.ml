(* Tests for the code generators and optimising transforms: OpenMP, HIP,
   oneAPI, SP pipeline, shared-memory tiling, pinned memory, zero-copy,
   unroll annotations.  Every generated design must stay runnable and
   functionally equivalent to its reference. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let parse = Parser.parse_program

(* a reference program with an already-extracted kernel *)
let base_src =
  "const int N = 24;\n\
   void knl(const double* xs, double* out, int n) {\n\
   for (int i = 0; i < n; i++) {\n\
   double acc = 0.0;\n\
   for (int j = 0; j < n; j++) { acc += xs[j] * 0.5; }\n\
   out[i] = sqrt(acc + (double)i);\n\
   }\n\
   }\n\
   int main() {\n\
   double xs[N]; double out[N];\n\
   for (int i = 0; i < N; i++) { xs[i] = rand01(); }\n\
   knl(xs, out, N);\n\
   double s = 0.0;\n\
   for (int i = 0; i < N; i++) { s += out[i]; }\n\
   print_float(s);\n\
   return 0; }"

let reference_output src = (Machine.run (parse src)).Machine.output

let close_outputs ?(tol = 1e-3) a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         match float_of_string_opt x, float_of_string_opt y with
         | Some fx, Some fy ->
           Float.abs (fx -. fy) /. Float.max 1.0 (Float.abs fx) <= tol
         | _, _ -> x = y)
       a b

(* ---- OpenMP ---- *)

let test_openmp_generate () =
  let p = parse base_src in
  match Openmp.generate p ~kernel:"knl" with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let lm = Option.get (Query.find_loop r.Openmp.omp_program r.Openmp.omp_loop_sid) in
    check "omp pragma present" true
      (List.exists (fun (pr : Ast.pragma) -> pr.pname = "omp") lm.Query.lm_stmt.Ast.pragmas);
    (* semantics unchanged *)
    Alcotest.(check (list string)) "same output" (reference_output base_src)
      (Machine.run r.Openmp.omp_program).Machine.output

let test_openmp_reduction_clause () =
  let src =
    "void knl(double* a, double* out, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }\n\
     int main() { double a[8]; double out[1]; for (int i = 0; i < 8; i++) { a[i] = 1.0; } knl(a, out, 8); print_float(out[0]); return 0; }"
  in
  let p = parse src in
  match Openmp.generate p ~kernel:"knl" with
  | Error e -> Alcotest.fail e
  | Ok r -> check "reduction clause" true (r.Openmp.omp_reductions = [ "+:s" ])

let test_openmp_rejects_carried () =
  let src =
    "void knl(double* a, int n) { for (int i = 1; i < n; i++) { a[i] = a[i - 1]; } }\n\
     int main() { double a[4]; a[0] = 1.0; knl(a, 4); print_float(a[3]); return 0; }"
  in
  match Openmp.generate (parse src) ~kernel:"knl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "carried loop must be rejected"

let test_openmp_num_threads_roundtrip () =
  let p = parse base_src in
  let r = Result.get_ok (Openmp.generate p ~kernel:"knl") in
  let p = Openmp.set_num_threads r.Openmp.omp_program ~kernel:"knl" ~threads:16 in
  check "threads readable" true (Openmp.num_threads p ~kernel:"knl" = Some 16);
  let p = Openmp.set_num_threads p ~kernel:"knl" ~threads:32 in
  check "threads replaced" true (Openmp.num_threads p ~kernel:"knl" = Some 32)

(* ---- HIP ---- *)

let hip_design () =
  match Hip.generate (parse base_src) ~kernel:"knl" with
  | Error e -> Alcotest.fail e
  | Ok r -> r

let test_hip_structure () =
  let r = hip_design () in
  check "body fn" true (Ast.find_func r.Hip.hip_program r.Hip.hip_body_fn <> None);
  check "launch fn" true (Ast.find_func r.Hip.hip_program r.Hip.hip_launch_fn <> None);
  check "manage keeps name" true (r.Hip.hip_manage_fn = "knl");
  check "written arrays" true (r.Hip.hip_written_arrays = [ "out" ])

let test_hip_runs_equivalent () =
  let r = hip_design () in
  (* generation itself does not demote precision, so outputs match exactly *)
  Alcotest.(check (list string)) "hip design output" (reference_output base_src)
    (Machine.run r.Hip.hip_program).Machine.output

let test_hip_blocksize_annotation () =
  let r = hip_design () in
  check "default blocksize" true
    (Hip.blocksize r.Hip.hip_program ~launch_fn:r.Hip.hip_launch_fn = Some 256);
  let p = Hip.set_blocksize r.Hip.hip_program ~launch_fn:r.Hip.hip_launch_fn 512 in
  check "set blocksize" true (Hip.blocksize p ~launch_fn:r.Hip.hip_launch_fn = Some 512)

let test_hip_pinned () =
  let r = hip_design () in
  check "not pinned initially" false (Hip.is_pinned r.Hip.hip_program ~manage_fn:"knl");
  let p = Hip.employ_pinned r.Hip.hip_program ~manage_fn:"knl" in
  check "pinned after task" true (Hip.is_pinned p ~manage_fn:"knl")

let test_hip_rejects_scalar_reduction () =
  let src =
    "void knl(double* a, double* out, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }\n\
     int main() { double a[4]; double out[1]; knl(a, out, 4); print_float(out[0]); return 0; }"
  in
  match Hip.generate (parse src) ~kernel:"knl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "scalar reduction needs atomics: must be rejected"

let test_hip_loc_grows () =
  let r = hip_design () in
  check "hip adds code" true
    (Loc_count.added_pct ~reference:(parse base_src) ~design:r.Hip.hip_program > 10.0)

(* ---- SP transforms ---- *)

let test_sp_math_fns () =
  let r = hip_design () in
  let p = Sp_transforms.sp_math_fns r.Hip.hip_program ~fnames:[ r.Hip.hip_body_fn ] in
  let fn = Option.get (Ast.find_func p r.Hip.hip_body_fn) in
  let text = Pretty.func_to_string fn in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check "sqrtf used" true (contains "sqrtf(" text);
  check "sqrt( gone" false
    (contains " sqrt(" text)

let test_sp_literals_and_types () =
  let r = hip_design () in
  let p = Sp_transforms.apply_all r.Hip.hip_program ~fnames:[ r.Hip.hip_body_fn ] in
  let fn = Option.get (Ast.find_func p r.Hip.hip_body_fn) in
  check "params demoted" true
    (List.for_all
       (fun (q : Ast.param) ->
         match q.prm_ty with
         | Ast.Tptr Ast.Tdouble | Ast.Tdouble -> false
         | _ -> true)
       fn.Ast.fparams);
  (* still runs, close to reference *)
  let out = (Machine.run p).Machine.output in
  check "sp output close" true (close_outputs (reference_output base_src) out)

let test_sp_kernel_counts_sp_flops () =
  let r = hip_design () in
  let p = Sp_transforms.apply_all r.Hip.hip_program ~fnames:[ r.Hip.hip_body_fn ] in
  (* demote the device buffers as the flow does *)
  let run = Machine.run p in
  check "sp flops appear" true (Counters.flops_sp run.Machine.counters > 0)

(* ---- specialised math ---- *)

let test_specialized_rsqrt () =
  let src =
    "void knl(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = 1.0 / sqrt((double)i + 1.0); } }\n\
     int main() { double a[4]; knl(a, 4); print_float(a[3]); return 0; }"
  in
  let p = parse src in
  checki "one site" 1 (Specialized_math.rsqrt_sites p ~fname:"knl");
  let p' = Specialized_math.apply p ~fnames:[ "knl" ] in
  checki "rewritten away" 0 (Specialized_math.rsqrt_sites p' ~fname:"knl");
  Alcotest.(check (list string)) "same numerics"
    (Machine.run p).Machine.output (Machine.run p').Machine.output

(* ---- shared memory ---- *)

let test_shared_mem_candidates_and_apply () =
  let r = hip_design () in
  (match Shared_mem.candidate_arrays r.Hip.hip_program ~body_fn:r.Hip.hip_body_fn with
   | Some (_, arrays) -> check "xs is a candidate" true (List.mem "xs" arrays)
   | None -> Alcotest.fail "expected candidates");
  match Shared_mem.apply r.Hip.hip_program ~body_fn:r.Hip.hip_body_fn with
  | Error e -> Alcotest.fail e
  | Ok applied ->
    check "tile pragma present" true
      (let fn = Option.get (Ast.find_func applied.Shared_mem.sm_program r.Hip.hip_body_fn) in
       List.exists
         (fun (lm : Query.loop_match) ->
           List.exists (fun (pr : Ast.pragma) -> List.mem "shared_tiling" pr.Ast.pargs)
             lm.lm_stmt.Ast.pragmas)
         (Query.loops_in_func fn));
    Alcotest.(check (list string)) "tiling preserves semantics"
      (reference_output base_src)
      (Machine.run applied.Shared_mem.sm_program).Machine.output

let test_shared_mem_no_candidate () =
  let src =
    "void knl(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = 1.0; } }\n\
     int main() { double a[4]; knl(a, 4); print_float(a[0]); return 0; }"
  in
  check "no candidates in write-only kernel" true
    (Shared_mem.candidate_arrays (parse src) ~body_fn:"knl" = None)

(* ---- oneAPI ---- *)

let oneapi_design () =
  match Oneapi.generate (parse base_src) ~kernel:"knl" with
  | Error e -> Alcotest.fail e
  | Ok r -> r

let test_oneapi_structure () =
  let r = oneapi_design () in
  check "kernel fn" true (Ast.find_func r.Oneapi.oneapi_program r.Oneapi.oneapi_kernel_fn <> None);
  check "single_task pragma" true
    (let fn = Option.get (Ast.find_func r.Oneapi.oneapi_program r.Oneapi.oneapi_kernel_fn) in
     List.exists
       (fun (lm : Query.loop_match) ->
         List.exists (fun (pr : Ast.pragma) -> List.mem "single_task" pr.Ast.pargs)
           lm.lm_stmt.Ast.pragmas)
       (Query.loops_in_func fn))

let test_oneapi_runs_equivalent () =
  let r = oneapi_design () in
  (* generation alone does not change precision: outputs match exactly *)
  Alcotest.(check (list string)) "oneapi design output" (reference_output base_src)
    (Machine.run r.Oneapi.oneapi_program).Machine.output

let test_oneapi_unroll_fixed_inner () =
  (* the fixed inner loop of this kernel gets #pragma unroll *)
  let src =
    "const int M = 4;\n\
     void knl(double* a, int n) { for (int i = 0; i < n; i++) { double s = 0.0; for (int k = 0; k < M; k++) { s += (double)k; } a[i] = s; } }\n\
     int main() { double a[4]; knl(a, 4); print_float(a[0]); return 0; }"
  in
  let r = Result.get_ok (Oneapi.generate (parse src) ~kernel:"knl") in
  let prog = Unroll.unroll_fixed_inner r.Oneapi.oneapi_program ~kernel:r.Oneapi.oneapi_kernel_fn in
  let fn = Option.get (Ast.find_func prog r.Oneapi.oneapi_kernel_fn) in
  let inner = Query.inner_loops (List.hd (Query.outermost_loops fn)) in
  check "inner annotated" true
    (List.exists
       (fun (lm : Query.loop_match) ->
         List.exists (fun (pr : Ast.pragma) -> pr.Ast.pname = "unroll") lm.lm_stmt.Ast.pragmas)
       inner)

let test_oneapi_outer_unroll_roundtrip () =
  let r = oneapi_design () in
  let p = Unroll.set_outer_unroll r.Oneapi.oneapi_program ~kernel:r.Oneapi.oneapi_kernel_fn ~factor:8 in
  checki "factor read back" 8 (Unroll.outer_unroll_factor p ~kernel:r.Oneapi.oneapi_kernel_fn);
  let p = Unroll.set_outer_unroll p ~kernel:r.Oneapi.oneapi_kernel_fn ~factor:16 in
  checki "factor replaced" 16 (Unroll.outer_unroll_factor p ~kernel:r.Oneapi.oneapi_kernel_fn)

let test_oneapi_zero_copy () =
  let r = oneapi_design () in
  let p =
    Oneapi.employ_zero_copy r.Oneapi.oneapi_program ~manage_fn:"knl"
      ~kernel_fn:r.Oneapi.oneapi_kernel_fn
  in
  check "zero copy annotated" true (Oneapi.is_zero_copy p ~kernel_fn:r.Oneapi.oneapi_kernel_fn);
  (* the zero-copy design must still run and produce identical output *)
  Alcotest.(check (list string)) "still equivalent" (reference_output base_src)
    (Machine.run p).Machine.output;
  (* its management code must be leaner than the buffered version *)
  check "fewer lines than buffered" true
    (Loc_count.program_loc p < Loc_count.program_loc r.Oneapi.oneapi_program)

let test_oneapi_loc_exceeds_hip () =
  let hip = hip_design () in
  let one = oneapi_design () in
  let reference = parse base_src in
  check "both add code" true
    (Loc_count.added_pct ~reference ~design:hip.Hip.hip_program > 5.0
     && Loc_count.added_pct ~reference ~design:one.Oneapi.oneapi_program > 5.0)

(* ---- buffers ---- *)

let test_buffers_length_resolution () =
  let p = parse base_src in
  check "xs length found" true (Buffers.length_expr_of_array p "xs" <> None);
  check "unknown array" true (Buffers.length_expr_of_array p "nope" = None)

let test_buffers_reject_scope_dependent () =
  let src =
    "void f(int m) { double a[m * 2]; a[0] = 1.0; }\nint main() { f(3); return 0; }"
  in
  check "local-size arrays rejected" true
    (Buffers.length_expr_of_array (parse src) "a" = None)

let suite =
  [
    Alcotest.test_case "openmp generate" `Quick test_openmp_generate;
    Alcotest.test_case "openmp reduction clause" `Quick test_openmp_reduction_clause;
    Alcotest.test_case "openmp rejects carried" `Quick test_openmp_rejects_carried;
    Alcotest.test_case "openmp num_threads" `Quick test_openmp_num_threads_roundtrip;
    Alcotest.test_case "hip structure" `Quick test_hip_structure;
    Alcotest.test_case "hip runs equivalent" `Quick test_hip_runs_equivalent;
    Alcotest.test_case "hip blocksize annotation" `Quick test_hip_blocksize_annotation;
    Alcotest.test_case "hip pinned" `Quick test_hip_pinned;
    Alcotest.test_case "hip rejects scalar reduction" `Quick test_hip_rejects_scalar_reduction;
    Alcotest.test_case "hip loc grows" `Quick test_hip_loc_grows;
    Alcotest.test_case "sp math fns" `Quick test_sp_math_fns;
    Alcotest.test_case "sp literals+types" `Quick test_sp_literals_and_types;
    Alcotest.test_case "sp kernel counts sp flops" `Quick test_sp_kernel_counts_sp_flops;
    Alcotest.test_case "specialised rsqrt" `Quick test_specialized_rsqrt;
    Alcotest.test_case "shared mem apply" `Quick test_shared_mem_candidates_and_apply;
    Alcotest.test_case "shared mem no candidate" `Quick test_shared_mem_no_candidate;
    Alcotest.test_case "oneapi structure" `Quick test_oneapi_structure;
    Alcotest.test_case "oneapi runs equivalent" `Quick test_oneapi_runs_equivalent;
    Alcotest.test_case "oneapi unroll fixed inner" `Quick test_oneapi_unroll_fixed_inner;
    Alcotest.test_case "oneapi outer unroll" `Quick test_oneapi_outer_unroll_roundtrip;
    Alcotest.test_case "oneapi zero copy" `Quick test_oneapi_zero_copy;
    Alcotest.test_case "codegen loc comparison" `Quick test_oneapi_loc_exceeds_hip;
    Alcotest.test_case "buffer lengths" `Quick test_buffers_length_resolution;
    Alcotest.test_case "buffer scope-dependent rejected" `Quick test_buffers_reject_scope_dependent;
  ]
