(* Tests for Util.Pool: ordering, exception marshalling, sequential
   fallbacks, nesting, and a differential property checking that a
   parallel Engine.run is observably identical to the sequential one on
   every benchmark. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

exception Boom of int

let restore_jobs () = Util.Pool.set_default_jobs (Util.Pool.recommended_jobs ())

let test_map_matches_sequential () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * 7) mod 13 in
  let pool = Util.Pool.create ~jobs:4 in
  Alcotest.(check (list int)) "same results, same order" (List.map f xs)
    (Util.Pool.map ~pool f xs)

let test_map_empty_and_singleton () =
  let pool = Util.Pool.create ~jobs:4 in
  Alcotest.(check (list int)) "empty" [] (Util.Pool.map ~pool (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ]
    (Util.Pool.map ~pool (fun x -> x + 2) [ 7 ])

let test_map_size_one_pool () =
  let pool = Util.Pool.create ~jobs:1 in
  checki "clamped size" 1 (Util.Pool.size pool);
  let trace = ref [] in
  let out =
    Util.Pool.map ~pool
      (fun x ->
        trace := x :: !trace;
        x * x)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 1; 4; 9 ] out;
  (* size-1 pools run in the calling domain, strictly left to right *)
  Alcotest.(check (list int)) "sequential order" [ 1; 2; 3 ] (List.rev !trace)

let test_exception_propagates () =
  let pool = Util.Pool.create ~jobs:4 in
  match Util.Pool.map ~pool (fun x -> if x = 5 then raise (Boom x) else x)
          (List.init 10 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 5 -> ()

let test_first_exception_wins () =
  (* several elements fail; the smallest-index failure is re-raised, as a
     sequential left-to-right map would surface it *)
  let pool = Util.Pool.create ~jobs:4 in
  match
    Util.Pool.map ~pool
      (fun x -> if x >= 3 then raise (Boom x) else x)
      (List.init 10 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n -> checki "first failing index" 3 n

let test_nested_maps () =
  let pool = Util.Pool.create ~jobs:3 in
  let expected = List.init 5 (fun i -> List.init 5 (fun j -> i * j)) in
  let got =
    Util.Pool.map ~pool
      (fun i -> Util.Pool.map ~pool (fun j -> i * j) (List.init 5 (fun j -> j)))
      (List.init 5 (fun i -> i))
  in
  check "nested parallel maps" true (got = expected)

let test_default_jobs_roundtrip () =
  let before = Util.Pool.default_jobs () in
  Util.Pool.set_default_jobs 3;
  checki "set" 3 (Util.Pool.default_jobs ());
  Util.Pool.set_default_jobs 1;
  checki "sequential" 1 (Util.Pool.default_jobs ());
  Util.Pool.set_default_jobs before;
  checki "restored" before (Util.Pool.default_jobs ())

(* ---- parallel flow == sequential flow, observably ---- *)

(* Log lines embed statement ids ("hotspot: loop 190 in main"), and ids
   depend on the global fresh-id counter, which has advanced by a
   different amount before the second run of the same app — in *any* two
   successive runs, sequential or not.  Blank the digits right after
   "loop " so the comparison sees the id-independent content. *)
let normalize_line line =
  let buf = Buffer.create (String.length line) in
  let n = String.length line in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n do
    if !i + 5 <= n && String.sub line !i 5 = "loop " then begin
      Buffer.add_string buf "loop ";
      i := !i + 5;
      if !i < n && is_digit line.[!i] then begin
        Buffer.add_char buf '#';
        while !i < n && is_digit line.[!i] do
          incr i
        done
      end
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let observe (rep : Engine.report) =
  ( Report.decision_text rep,
    Report.design_table rep,
    List.map
      (fun (d : Design.t) ->
        (d.Design.d_path, Target.short d.Design.d_target, d.Design.d_valid,
         d.Design.d_speedup, d.Design.d_time_s,
         List.map normalize_line d.Design.d_log))
      rep.Engine.rep_designs )

(* Four levels of nested fan-out sharing one scheduler — suite map →
   flow → branch-path futures → DSE-point futures — must produce
   byte-identical reports at every job count.  This is the shape that
   silently degraded to sequential under the old spare-domain budget,
   and the shape where work-stealing order must never leak into
   results. *)
let run_suite_fanout () =
  Util.Pool.map
    (fun (app : App.t) ->
      match
        Engine.run ~workload:app.App.app_test_overrides ~mode:Pipeline.Uninformed app
      with
      | Ok rep -> (observe rep, Report.why_text rep)
      | Error e -> Alcotest.fail e)
    Suite.all

let test_nested_fanout_across_jobs () =
  Cache.set_dir None;
  let saved = Util.Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs saved) @@ fun () ->
  Util.Pool.set_default_jobs 1;
  let reference = run_suite_fanout () in
  List.iter
    (fun jobs ->
      Util.Pool.set_default_jobs jobs;
      check
        (Printf.sprintf "suite reports and --why identical at --jobs %d" jobs)
        true
        (run_suite_fanout () = reference))
    [ 2; 8 ]

(* The metrics `psaflow --explain` prints must also be identical at any
   job count: everything scheduling- or wall-clock-dependent (pool.*,
   *.seconds timings and histograms, cache single-flight waits) is
   excluded by the shared Obs.Metrics.jobs_invariant predicate — the
   same one bin/psaflow.ml filters with — and what remains is required
   to be deterministic. *)
let explain_visible_snapshot () =
  List.filter
    (fun (name, _) -> Obs.Metrics.jobs_invariant name)
    (Obs.Metrics.snapshot ())

let test_explain_metrics_across_jobs () =
  Cache.set_dir None;
  let saved = Util.Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs saved) @@ fun () ->
  let snap_at jobs =
    Util.Pool.set_default_jobs jobs;
    Cache.clear_memory ();
    Obs.Metrics.reset ();
    (match
       Engine.run ~workload:Nbody.app.App.app_test_overrides
         ~mode:Pipeline.Uninformed Nbody.app
     with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    explain_visible_snapshot ()
  in
  let reference = snap_at 1 in
  List.iter
    (fun jobs ->
      check
        (Printf.sprintf "explain-visible metrics identical at --jobs %d" jobs)
        true
        (snap_at jobs = reference))
    [ 2; 8 ]

let prop_parallel_run_equals_sequential =
  QCheck.Test.make ~count:5 ~name:"parallel Engine.run == sequential (all apps)"
    (QCheck.make
       ~print:(fun i -> (List.nth Suite.all (i mod List.length Suite.all)).App.app_slug)
       QCheck.Gen.(0 -- (List.length Suite.all - 1)))
    (fun i ->
      let app = List.nth Suite.all i in
      let run () =
        Engine.run ~workload:app.App.app_test_overrides ~mode:Pipeline.Uninformed app
      in
      Util.Pool.set_default_jobs 1;
      let sequential = run () in
      Util.Pool.set_default_jobs 4;
      let parallel = run () in
      restore_jobs ();
      match (sequential, parallel) with
      | Ok s, Ok p -> observe s = observe p
      | Error a, Error b -> a = b
      | Ok _, Error _ | Error _, Ok _ -> false)

let suite =
  [
    ("pool map matches sequential map", `Quick, test_map_matches_sequential);
    ("pool map on empty/singleton lists", `Quick, test_map_empty_and_singleton);
    ("pool of size 1 runs sequentially", `Quick, test_map_size_one_pool);
    ("exceptions propagate to the submitter", `Quick, test_exception_propagates);
    ("first failure in input order wins", `Quick, test_first_exception_wins);
    ("nested maps neither deadlock nor reorder", `Quick, test_nested_maps);
    ("default jobs can be set and restored", `Quick, test_default_jobs_roundtrip);
    ( "nested suite fan-out byte-identical at --jobs 1/2/8",
      `Quick,
      test_nested_fanout_across_jobs );
    ( "explain-visible metrics identical at --jobs 1/2/8",
      `Quick,
      test_explain_metrics_across_jobs );
    QCheck_alcotest.to_alcotest prop_parallel_run_equals_sequential;
  ]
