(* Tests for lib/obs: the metrics registry (counters, gauges, histogram
   percentiles), the span tracer (nesting/ordering under pool
   parallelism, Chrome-trace JSON validity), and flow provenance
   determinism (same seed => byte-identical --why text). *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

(* ---- metrics registry ---- *)

let test_counter_and_gauge () =
  let c = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.Counter.set c 0;
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.add c 41;
  checki "counter accumulates" 42 (Obs.Metrics.Counter.value c);
  check "intern returns the same instrument" true
    (Obs.Metrics.Counter.value (Obs.Metrics.counter "test.obs.counter") = 42);
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  Obs.Metrics.Gauge.set g 1.5;
  Obs.Metrics.Gauge.add g 0.25;
  checkf "gauge set+add" 1.75 (Obs.Metrics.Gauge.value g);
  (match Obs.Metrics.find "test.obs.counter" with
   | Some (Obs.Metrics.Count 42) -> ()
   | _ -> Alcotest.fail "snapshot value for counter");
  match Obs.Metrics.find "test.obs.gauge" with
  | Some (Obs.Metrics.Value v) -> checkf "snapshot value for gauge" 1.75 v
  | _ -> Alcotest.fail "snapshot value for gauge"

let test_instrument_class_clash () =
  ignore (Obs.Metrics.counter "test.obs.clash");
  match Obs.Metrics.gauge "test.obs.clash" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-registering a counter as a gauge must fail"

let test_histogram_percentiles () =
  let h = Obs.Metrics.histogram "test.obs.hist" in
  (* insert 1..100 in a scrambled but deterministic order *)
  List.iter
    (fun i -> Obs.Metrics.Histogram.observe h (float_of_int ((i * 37 mod 100) + 1)))
    (List.init 100 Fun.id);
  checki "count" 100 (Obs.Metrics.Histogram.count h);
  checkf "sum" 5050.0 (Obs.Metrics.Histogram.sum h);
  (* linear interpolation between order statistics of 1..100 *)
  checkf "p0" 1.0 (Obs.Metrics.Histogram.percentile h 0.0);
  checkf "p50" 50.5 (Obs.Metrics.Histogram.percentile h 50.0);
  checkf "p90" 90.1 (Obs.Metrics.Histogram.percentile h 90.0);
  checkf "p99" 99.01 (Obs.Metrics.Histogram.percentile h 99.0);
  checkf "p100" 100.0 (Obs.Metrics.Histogram.percentile h 100.0);
  match Obs.Metrics.find "test.obs.hist" with
  | Some (Obs.Metrics.Summary { count; min; max; p50; _ }) ->
    checki "summary count" 100 count;
    checkf "summary min" 1.0 min;
    checkf "summary max" 100.0 max;
    checkf "summary p50" 50.5 p50
  | _ -> Alcotest.fail "snapshot value for histogram"

let test_histogram_empty_and_single () =
  let h = Obs.Metrics.histogram "test.obs.hist1" in
  check "empty percentile is nan" true
    (Float.is_nan (Obs.Metrics.Histogram.percentile h 50.0));
  Obs.Metrics.Histogram.observe h 7.0;
  checkf "single-value p50" 7.0 (Obs.Metrics.Histogram.percentile h 50.0);
  checkf "single-value p99" 7.0 (Obs.Metrics.Histogram.percentile h 99.0)

(* ---- span tracer ---- *)

let export_string () =
  let buf = Buffer.create 4096 in
  Obs.Trace.export_json buf;
  Buffer.contents buf

let test_disabled_tracing_is_transparent () =
  check "disabled by default here" false (Obs.Trace.enabled ());
  let r =
    Obs.Trace.with_span ~name:"ignored" ~kind:Obs.Trace.Section (fun sp ->
        Obs.Trace.add_attr sp "k" (Obs.Trace.Int 1);
        7)
  in
  checki "body result passes through" 7 r

let test_span_nesting_single_domain () =
  Obs.Trace.start ();
  Obs.Trace.with_span ~name:"outer" ~kind:Obs.Trace.Flow (fun _ ->
      Obs.Trace.with_span ~name:"inner" ~kind:Obs.Trace.Task (fun _ -> ()));
  Obs.Trace.stop ();
  match Obs.Trace.events () with
  | [ b_outer; b_inner; e_inner; e_outer ] ->
    checks "outer opens first" "outer" b_outer.Obs.Trace.ev_name;
    check "outer B" true (b_outer.Obs.Trace.ev_ph = `B);
    checks "inner nests inside" "inner" b_inner.Obs.Trace.ev_name;
    check "inner closes before outer" true
      (e_inner.Obs.Trace.ev_ph = `E
      && e_inner.Obs.Trace.ev_name = "inner"
      && e_outer.Obs.Trace.ev_ph = `E
      && e_outer.Obs.Trace.ev_name = "outer");
    check "timestamps non-decreasing" true
      (b_outer.Obs.Trace.ev_ts <= b_inner.Obs.Trace.ev_ts
      && b_inner.Obs.Trace.ev_ts <= e_inner.Obs.Trace.ev_ts
      && e_inner.Obs.Trace.ev_ts <= e_outer.Obs.Trace.ev_ts)
  | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs)

let test_spans_under_pool_parallelism () =
  let saved = Util.Pool.default_jobs () in
  Util.Pool.set_default_jobs 4;
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs saved) @@ fun () ->
  Obs.Trace.start ();
  let items = List.init 16 Fun.id in
  let out =
    Obs.Trace.with_span ~name:"fanout" ~kind:Obs.Trace.Flow (fun _ ->
        Util.Pool.map
          (fun i ->
            Obs.Trace.with_span ~name:(Printf.sprintf "item-%d" i)
              ~kind:Obs.Trace.Task (fun sp ->
                Obs.Trace.add_attr sp "i" (Obs.Trace.Int i);
                i * i))
          items)
  in
  Obs.Trace.stop ();
  checki "map result intact" 16 (List.length out);
  check "map order intact" true (out = List.map (fun i -> i * i) items);
  (* every domain track in the merged stream must be balanced with
     non-decreasing timestamps; the validator checks both *)
  match Obs.Trace_json.validate_string (export_string ()) with
  | Error e -> Alcotest.failf "parallel trace invalid: %s" e
  | Ok su ->
    (* 16 item spans (one per work item, wrapped in pool spans when the
       pool actually fans out) + the fanout span *)
    checki "task spans" 16
      (try List.assoc "task" su.Obs.Trace_json.su_cats with Not_found -> 0);
    checki "flow spans" 1
      (try List.assoc "flow" su.Obs.Trace_json.su_cats with Not_found -> 0);
    check "at least one domain track" true
      (List.length su.Obs.Trace_json.su_tids >= 1)

let test_trace_json_valid_and_restart_clears () =
  Obs.Trace.start ();
  Obs.Trace.with_span ~name:"a" ~kind:Obs.Trace.Section (fun _ -> ());
  Obs.Trace.stop ();
  (match Obs.Trace_json.validate_string (export_string ()) with
   | Ok su -> checki "one span = two events" 2 su.Obs.Trace_json.su_events
   | Error e -> Alcotest.failf "trace invalid: %s" e);
  (* start () discards the previous recording *)
  Obs.Trace.start ();
  Obs.Trace.stop ();
  checki "restart clears spans" 0 (List.length (Obs.Trace.events ()))

let test_validator_rejects_malformed () =
  (match Obs.Trace_json.validate_string "{ not json" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "parser must reject malformed input");
  let unbalanced =
    {|{"traceEvents":[{"ph":"B","name":"x","cat":"task","pid":1,"tid":0,"ts":1.0}]}|}
  in
  match Obs.Trace_json.validate_string unbalanced with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "validator must reject an unclosed span"

(* ---- provenance determinism ---- *)

let why_of_run app =
  match
    Engine.run ~workload:app.App.app_test_overrides ~mode:Pipeline.Uninformed app
  with
  | Ok rep -> Report.why_text rep
  | Error e -> Alcotest.fail e

let test_why_deterministic () =
  (* --why must not depend on run-to-run state (timings, domain
     scheduling): with the cache off, two runs of the same flow render
     byte-identical provenance, sequentially and under --jobs 4 *)
  Cache.set_dir None;
  let saved = Util.Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs saved) @@ fun () ->
  Util.Pool.set_default_jobs 1;
  let seq1 = why_of_run Nbody.app in
  let seq2 = why_of_run Nbody.app in
  checks "same seed, same --why" seq1 seq2;
  Util.Pool.set_default_jobs 4;
  let par = why_of_run Nbody.app in
  checks "--jobs 4 renders the same --why" seq1 par;
  check "trail mentions the branch decision" true
    (String.length seq1 > 0
    &&
    let has_sub sub =
      let n = String.length seq1 and m = String.length sub in
      let rec go i = i + m <= n && (String.sub seq1 i m = sub || go (i + 1)) in
      go 0
    in
    has_sub "branch" && has_sub "uncached")

let suite =
  [
    Alcotest.test_case "metrics: counter + gauge" `Quick test_counter_and_gauge;
    Alcotest.test_case "metrics: class clash rejected" `Quick
      test_instrument_class_clash;
    Alcotest.test_case "metrics: histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "metrics: histogram edge cases" `Quick
      test_histogram_empty_and_single;
    Alcotest.test_case "trace: disabled is transparent" `Quick
      test_disabled_tracing_is_transparent;
    Alcotest.test_case "trace: span nesting" `Quick test_span_nesting_single_domain;
    Alcotest.test_case "trace: spans under pool parallelism" `Quick
      test_spans_under_pool_parallelism;
    Alcotest.test_case "trace: JSON valid, restart clears" `Quick
      test_trace_json_valid_and_restart_clears;
    Alcotest.test_case "trace: validator rejects malformed" `Quick
      test_validator_rejects_malformed;
    Alcotest.test_case "provenance: --why deterministic" `Quick
      test_why_deterministic;
  ]
