(* Tests for Memo: memoized interpretation must be indistinguishable from
   direct interpretation, distinct configurations must not collide, the
   hit/miss counters must be observable, and one flow run must actually
   reuse interpretations. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let nbody_program = App.program Nbody.app

let small_config =
  { Machine.default_config with
    overrides = App.machine_overrides [ ("N", 8); ("STEPS", 1) ] }

let sorted_stats r =
  ( List.sort compare r.Machine.loop_stats,
    List.sort compare r.Machine.region_stats,
    List.sort compare r.Machine.aliased_funcs )

let test_memo_equals_direct () =
  Memo.reset ();
  let config = Memo.analysis_config ~config:small_config () in
  let direct = Machine.run ~config nbody_program in
  let first = Memo.run ~config nbody_program in
  let second = Memo.run ~config nbody_program in
  check "miss equals direct run" true (first = direct);
  check "hit equals direct run" true (second = direct);
  let s = Memo.stats () in
  checki "one miss" 1 s.Memo.misses;
  checki "one hit" 1 s.Memo.hits

let test_distinct_configs_do_not_collide () =
  Memo.reset ();
  let base = Memo.analysis_config ~config:small_config () in
  let r8 = Memo.run ~config:base nbody_program in
  let r16 =
    Memo.run
      ~config:{ base with overrides = App.machine_overrides [ ("N", 16); ("STEPS", 1) ] }
      nbody_program
  in
  let r_seed = Memo.run ~config:{ base with Machine.seed = 7 } nbody_program in
  let r_plain = Memo.run ~config:{ base with Machine.profile_loops = false } nbody_program in
  ignore r_seed;
  let s = Memo.stats () in
  checki "four distinct entries" 4 s.Memo.misses;
  checki "no spurious hits" 0 s.Memo.hits;
  check "different workloads differ" true (r8.Machine.output <> r16.Machine.output);
  check "profiling flag respected" true (r_plain.Machine.loop_stats = []);
  check "profiled run has loop stats" true (r8.Machine.loop_stats <> [])

let test_renumbered_program_hits () =
  (* id-refreshed copies of a program are the same program to the
     interpreter; the memo must serve them from one entry, translating
     the statistics back into the requester's statement ids *)
  Memo.reset ();
  let config = Memo.analysis_config ~config:small_config () in
  let renumbered = Ast.renumber nbody_program in
  let r1 = Memo.run ~config nbody_program in
  let r2 = Memo.run ~config renumbered in
  let s = Memo.stats () in
  checki "second request is a hit" 1 s.Memo.hits;
  checki "single interpretation" 1 s.Memo.misses;
  check "same observable behaviour" true
    (r1.Machine.output = r2.Machine.output && r1.Machine.ret = r2.Machine.ret);
  (* translated statistics must match a direct run of the renumbered copy *)
  let direct = Machine.run ~config renumbered in
  check "translated stats equal direct stats" true
    (sorted_stats r2 = sorted_stats direct);
  check "ids were actually translated" true
    (List.sort compare (List.map fst r1.Machine.loop_stats)
    <> List.sort compare (List.map fst r2.Machine.loop_stats))

let test_exceptions_not_cached () =
  Memo.reset ();
  let config = { small_config with Machine.max_steps = 10 } in
  let attempt () =
    match Memo.run ~config nbody_program with
    | _ -> Alcotest.fail "expected step limit"
    | exception Machine.Step_limit_exceeded -> ()
  in
  attempt ();
  attempt ();
  let s = Memo.stats () in
  checki "failed runs never hit" 0 s.Memo.hits

let test_flow_run_reuses_interpretations () =
  (* acceptance: one uninformed N-Body flow must hit the memo at least
     three times (the analysis tasks share one kernel profile) *)
  Memo.reset ();
  (match
     Engine.run ~workload:Nbody.app.App.app_test_overrides
       ~mode:Pipeline.Uninformed Nbody.app
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("flow failed: " ^ e));
  let s = Memo.stats () in
  check
    (Printf.sprintf "at least 3 hits in one flow run (got %d)" s.Memo.hits)
    true (s.Memo.hits >= 3)

let test_backends_do_not_collide () =
  Memo.reset ();
  let config = Memo.analysis_config ~config:small_config () in
  let ra = Memo.run ~config ~backend:`Ast nbody_program in
  let rc = Memo.run ~config ~backend:`Compiled nbody_program in
  let s = Memo.stats () in
  checki "each backend keyed separately" 2 s.Memo.misses;
  checki "no cross-backend hit" 0 s.Memo.hits;
  check "backends agree through the cache" true
    (sorted_stats ra = sorted_stats rc && ra.Machine.output = rc.Machine.output)

let suite =
  [
    ("memoized run equals direct run", `Quick, test_memo_equals_direct);
    ("backends are keyed separately", `Quick, test_backends_do_not_collide);
    ("distinct configs do not collide", `Quick, test_distinct_configs_do_not_collide);
    ("id-renumbered programs share one entry", `Quick, test_renumbered_program_hits);
    ("failed runs are not cached", `Quick, test_exceptions_not_cached);
    ("one flow run reuses interpretations", `Quick, test_flow_run_reuses_interpretations);
  ]
