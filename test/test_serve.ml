(* psaflowd building blocks and daemon core: codec round-trip and
   malformed-request rejection, HTTP framing, rate-limiter replay
   determinism, bounded-admission load shedding, request-store crash
   recovery, and in-process end-to-end server runs with an injected
   runner (shed burst, drain, resume, exclusive dispatch, report
   bytes). *)

let check msg = Alcotest.(check bool) msg

let check_int msg = Alcotest.(check int) msg

let check_str msg = Alcotest.(check string) msg

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "psa-serve-test-%d-%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let quick_spec =
  {
    Request.sp_source = Request.Builtin "nbody";
    sp_mode = Pipeline.Uninformed;
    sp_quick = true;
    sp_step_budget = None;
    sp_jobs_hint = None;
  }

(* One real engine run shared by every test that needs a genuine report;
   lazy so pure codec/limiter tests never pay for it. *)
let real_outcome = lazy (Request.run quick_spec)

(* ---------------- codec ---------------- *)

let round_trip spec client =
  match Serve.Codec.parse (Serve.Codec.to_json ?client spec) with
  | Error msg -> Alcotest.failf "round-trip rejected: %s" msg
  | Ok got -> got

let test_codec_round_trip () =
  let spec, client = round_trip quick_spec None in
  check "builtin survives" true (spec = quick_spec);
  check "no client" true (client = None);
  let full =
    {
      Request.sp_source =
        Request.Inline { name = "mine"; text = "int main() {}"; scale = 4 };
      sp_mode = Pipeline.Informed;
      sp_quick = false;
      sp_step_budget = Some 123456;
      sp_jobs_hint = Some 8;
    }
  in
  let spec, client = round_trip full (Some "alice") in
  check "inline survives" true (spec = full);
  check "client survives" true (client = Some "alice")

let test_codec_defaults () =
  match Serve.Codec.parse {|{"app":"nbody"}|} with
  | Error msg -> Alcotest.failf "minimal spec rejected: %s" msg
  | Ok (spec, client) ->
    check "defaults" true (spec = { quick_spec with Request.sp_quick = false });
    check "no client" true (client = None)

let test_codec_malformed () =
  let rejected body frag =
    match Serve.Codec.parse body with
    | Ok _ -> Alcotest.failf "accepted malformed body %s" body
    | Error msg ->
      check (Printf.sprintf "error mentions %s" frag) true
        (contains ~needle:frag msg)
  in
  rejected "not json" "invalid JSON";
  rejected {|[1,2]|} "object";
  rejected {|{"app":"nbody","frobnicate":1}|} "frobnicate";
  rejected {|{}|} "required";
  rejected {|{"app":"nbody","source":"int main(){}"}|} "not both";
  rejected {|{"app":"nbody","scale":2}|} "inline";
  rejected {|{"app":"nbody","mode":"psychic"}|} "mode";
  rejected {|{"app":"nbody","workload":"huge"}|} "workload";
  rejected {|{"app":"nbody","step_budget":0}|} "positive";
  rejected {|{"app":"nbody","step_budget":1.5}|} "positive";
  rejected {|{"app":"nbody","jobs":-2}|} "positive";
  rejected {|{"app":"nbody","client":""}|} "client";
  rejected {|{"app":7}|} "string"

(* ---------------- http framing ---------------- *)

(* Feed raw bytes through a socketpair so read_request sees a real fd. *)
let parse_bytes text =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      ignore (Unix.write_substring a text 0 (String.length text));
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      Serve.Http.read_request ~max_body:4096 b)

let test_http_parse () =
  match
    parse_bytes
      "POST /v1/flows?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\nX-Client: bob\r\n\r\nbody"
  with
  | Error _ -> Alcotest.fail "well-formed request rejected"
  | Ok rq ->
    check_str "method" "POST" rq.Serve.Http.rq_method;
    check_str "path" "/v1/flows" rq.Serve.Http.rq_path;
    check_str "query" "x=1" rq.Serve.Http.rq_query;
    check_str "body" "body" rq.Serve.Http.rq_body;
    check "header lookup is case-insensitive" true
      (Serve.Http.header rq "x-client" = Some "bob")

let test_http_bare_lf () =
  match parse_bytes "GET /healthz HTTP/1.1\nHost: h\n\n" with
  | Error _ -> Alcotest.fail "bare-LF request rejected"
  | Ok rq -> check_str "path" "/healthz" rq.Serve.Http.rq_path

let test_http_errors () =
  (match parse_bytes "total garbage\r\n\r\n" with
  | Error (Serve.Http.Bad_request _) -> ()
  | _ -> Alcotest.fail "garbage request line not Bad_request");
  (match
     parse_bytes
       ("POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"
       ^ String.make 4097 'x')
   with
  | Error Serve.Http.Too_large -> ()
  | _ -> Alcotest.fail "oversized body not Too_large");
  match parse_bytes "GET /partial" with
  | Error Serve.Http.Closed -> ()
  | _ -> Alcotest.fail "truncated request not Closed"

let test_http_response () =
  let resp =
    Serve.Http.response ~status:429
      ~extra_headers:[ ("Retry-After", "2") ]
      "{}"
  in
  check "status line" true
    (contains ~needle:"HTTP/1.1 429 Too Many Requests\r\n" resp);
  check "content length" true (contains ~needle:"Content-Length: 2\r\n" resp);
  check "connection close" true (contains ~needle:"Connection: close\r\n" resp);
  check "extra header" true (contains ~needle:"Retry-After: 2\r\n" resp);
  check "body" true (contains ~needle:"\r\n\r\n{}" resp)

(* ---------------- limiter ---------------- *)

let script limiter clock arrivals =
  List.map
    (fun (at, client) ->
      clock := at;
      Serve.Limiter.check limiter ~client)
    arrivals

let test_limiter_bucket () =
  let clock = ref 0.0 in
  let l =
    Serve.Limiter.create ~clock:(fun () -> !clock) ~rate:1.0 ~burst:2.0 ()
  in
  let verdicts =
    script l clock
      [ (0.0, "a"); (0.0, "a"); (0.0, "a"); (0.0, "b"); (1.0, "a"); (1.2, "a") ]
  in
  (match verdicts with
  | [ Admit; Admit; Limited _; Admit; Admit; Limited _ ] -> ()
  | _ -> Alcotest.fail "bucket verdict sequence wrong");
  check_int "clients are independent buckets" 2 (Serve.Limiter.clients l)

let test_limiter_replay_determinism () =
  let arrivals =
    [ (0.0, "a"); (0.05, "b"); (0.1, "a"); (0.1, "a"); (0.4, "b"); (0.9, "a");
      (1.3, "a"); (1.3, "b"); (1.35, "a"); (2.0, "a") ]
  in
  let run () =
    let clock = ref 0.0 in
    let l =
      Serve.Limiter.create ~clock:(fun () -> !clock) ~rate:2.0 ~burst:1.0 ()
    in
    script l clock arrivals
  in
  check "same arrival script yields the same verdicts" true (run () = run ());
  match List.filter (function Serve.Limiter.Limited _ -> true | _ -> false) (run ()) with
  | [] -> Alcotest.fail "script never hit the limit"
  | limited ->
    List.iter
      (function
        | Serve.Limiter.Limited after ->
          check "retry-after is positive" true (after > 0.0)
        | Serve.Limiter.Admit -> ())
      limited

let test_limiter_disabled () =
  let l = Serve.Limiter.create ~rate:0.0 ~burst:1.0 () in
  for _ = 1 to 50 do
    match Serve.Limiter.check l ~client:"flood" with
    | Serve.Limiter.Admit -> ()
    | Serve.Limiter.Limited _ -> Alcotest.fail "rate 0 must disable limiting"
  done

(* ---------------- admission ---------------- *)

let test_admission_shed () =
  let q = Serve.Admission.create ~capacity:2 in
  check_int "capacity" 2 (Serve.Admission.capacity q);
  check "first fits" true (Serve.Admission.offer q "a");
  check "second fits" true (Serve.Admission.offer q "b");
  check "third sheds" false (Serve.Admission.offer q "c");
  Serve.Admission.force q "r";
  check_int "force bypasses the cap" 3 (Serve.Admission.length q);
  check "fifo" true (Serve.Admission.take q = Some "a");
  check "fifo 2" true (Serve.Admission.take q = Some "b");
  check "forced entry drains last" true (Serve.Admission.take q = Some "r");
  check "empty" true (Serve.Admission.take q = None);
  check "offer after drain fits again" true (Serve.Admission.offer q "d")

(* ---------------- store ---------------- *)

let entry id state =
  {
    Serve.Store.e_id = id;
    e_received = 1754650000.5;
    e_client = "alice";
    e_spec = Serve.Codec.to_json ~client:"alice" quick_spec;
    e_state = state;
    e_status = (match state with Serve.Store.Done -> 0 | _ -> -1);
    e_error = "";
    e_report = (match state with Serve.Store.Done -> "report\nbytes\n" | _ -> "");
    e_why = "";
    e_ledger = "";
  }

let test_store_round_trip () =
  with_dir (fun dir ->
      let e = entry "q000002" Serve.Store.Done in
      (match Serve.Store.save ~dir e with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "save failed: %s" msg);
      (match Serve.Store.find ~dir "q000002" with
      | Some got -> check "entry survives byte-for-byte" true (got = e)
      | None -> Alcotest.fail "saved entry not found");
      (match Serve.Store.save ~dir (entry "q000001" Serve.Store.Queued) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "save failed: %s" msg);
      let entries, bad = Serve.Store.load ~dir in
      check_int "no skips" 0 bad;
      check "load is id-ordered" true
        (List.map (fun e -> e.Serve.Store.e_id) entries
        = [ "q000001"; "q000002" ]);
      check_str "fresh id is one past the highest" "q000003"
        (Serve.Store.fresh_id ~dir))

let test_store_corruption_skipped () =
  with_dir (fun dir ->
      (match Serve.Store.save ~dir (entry "q000001" Serve.Store.Done) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "save failed: %s" msg);
      let oc = open_out (Filename.concat dir "q000000.psareq") in
      output_string oc "not a checksummed record";
      close_out oc;
      let entries, bad = Serve.Store.load ~dir in
      check_int "corrupt file skipped" 1 bad;
      check_int "valid entry still loads" 1 (List.length entries))

let test_store_recover () =
  with_dir (fun dir ->
      List.iter
        (fun e ->
          match Serve.Store.save ~dir e with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "save failed: %s" msg)
        [
          entry "q000001" Serve.Store.Running;
          entry "q000002" Serve.Store.Queued;
          entry "q000003" Serve.Store.Done;
        ];
      let entries, _ = Serve.Store.recover ~dir in
      let state id =
        (List.find (fun e -> e.Serve.Store.e_id = id) entries)
          .Serve.Store.e_state
      in
      check "running becomes interrupted" true
        (state "q000001" = Serve.Store.Interrupted);
      check "queued stays queued" true (state "q000002" = Serve.Store.Queued);
      check "terminal records are never rewritten" true
        (state "q000003" = Serve.Store.Done);
      (* the rewrite is persistent: a second recovery sees it on disk *)
      match Serve.Store.find ~dir "q000001" with
      | Some e ->
        check "interrupted state reached the disk" true
          (e.Serve.Store.e_state = Serve.Store.Interrupted)
      | None -> Alcotest.fail "recovered entry vanished")

(* ---------------- request ---------------- *)

let test_request_run () =
  let oc = Lazy.force real_outcome in
  check_int "quick nbody run is fully ok" 0 oc.Request.oc_status;
  (match oc.Request.oc_report with
  | Some rep ->
    check_str "text is Report.run_text" (Report.run_text rep)
      oc.Request.oc_text;
    check_str "why is Report.why_text" (Report.why_text rep) oc.Request.oc_why
  | None -> Alcotest.fail "no report from a quick run");
  check "report text names the app" true
    (contains ~needle:"N-Body" oc.Request.oc_text)

let test_request_resolve_errors () =
  (match
     Request.resolve { quick_spec with Request.sp_source = Request.Builtin "nosuch" }
   with
  | Ok _ -> Alcotest.fail "unknown slug resolved"
  | Error msg -> check "error lists known slugs" true (contains ~needle:"nbody" msg));
  let oc =
    Request.run { quick_spec with Request.sp_source = Request.Builtin "nosuch" }
  in
  check_int "unresolvable spec fails with status 1" 1 oc.Request.oc_status;
  check "run never raises" true (oc.Request.oc_error <> "")

(* ---------------- server end-to-end ---------------- *)

let http_round sock_path text =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX sock_path);
      ignore (Unix.write_substring fd text 0 (String.length text));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      Buffer.contents buf)

let status_of resp =
  match String.split_on_char ' ' resp with
  | _ :: code :: _ -> int_of_string code
  | _ -> Alcotest.failf "unparsable response %S" resp

let body_of resp =
  let rec find i =
    if i + 4 > String.length resp then ""
    else if String.sub resp i 4 = "\r\n\r\n" then
      String.sub resp (i + 4) (String.length resp - i - 4)
    else find (i + 1)
  in
  find 0

let get sock path =
  http_round sock (Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\n\r\n" path)

let post sock path body =
  http_round sock
    (Printf.sprintf "POST %s HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s"
       path (String.length body) body)

let wait_for ?(timeout = 10.0) what pred =
  let t0 = Unix.gettimeofday () in
  let rec loop () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      loop ()
    end
  in
  loop ()

(* Run [f sock] against a live in-process daemon, then drain it and
   check the drain was clean.  The runner is injected so tests control
   execution deterministically. *)
let with_server ?(queue_cap = 8) ?(max_inflight = 2) ?(rate = 0.0)
    ?(burst = 1.0) ?(resume = true) ~runner dir f =
  let sock = Filename.concat dir "psa.sock" in
  let cfg =
    {
      (Serve.Server.default_config (Serve.Server.Unix_sock sock)) with
      Serve.Server.c_store = Filename.concat dir "reqs";
      c_ledger = None;
      c_queue_cap = queue_cap;
      c_max_inflight = max_inflight;
      c_rate = rate;
      c_burst = burst;
      c_resume = resume;
      c_runner = runner;
    }
  in
  let server = Domain.spawn (fun () -> Serve.Server.run cfg) in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.request_stop ();
        match Domain.join server with
        | Ok 0 -> ()
        | Ok code -> Alcotest.failf "drain exited %d" code
        | Error msg -> Alcotest.failf "server failed: %s" msg)
      (fun () ->
        wait_for "socket" (fun () -> Sys.file_exists sock);
        f sock)
  in
  check "socket file removed on clean shutdown" false (Sys.file_exists sock);
  result

let failing_outcome =
  {
    Request.oc_status = 1;
    oc_report = None;
    oc_error = "injected";
    oc_text = "";
    oc_why = "";
  }

(* A latch the injected runner blocks on until the test releases it. *)
type gate = { g_lock : Mutex.t; g_cond : Condition.t; mutable g_open : bool }

let gate () = { g_lock = Mutex.create (); g_cond = Condition.create (); g_open = false }

let gate_wait g =
  Mutex.lock g.g_lock;
  while not g.g_open do
    Condition.wait g.g_cond g.g_lock
  done;
  Mutex.unlock g.g_lock

let gate_open g =
  Mutex.lock g.g_lock;
  g.g_open <- true;
  Condition.broadcast g.g_cond;
  Mutex.unlock g.g_lock

let flow_state sock id =
  let b = body_of (get sock ("/v1/flows/" ^ id)) in
  List.find_map
    (fun st -> if contains ~needle:(Printf.sprintf "\"state\":%S" st) b then Some st else None)
    [ "queued"; "running"; "done"; "failed"; "interrupted" ]
  |> Option.value ~default:"?"

let terminal sock id =
  match flow_state sock id with "done" | "failed" -> true | _ -> false

let test_server_e2e () =
  with_dir (fun dir ->
      let g = gate () in
      let runner _spec =
        gate_wait g;
        Lazy.force real_outcome
      in
      with_server ~queue_cap:1 ~max_inflight:1 ~runner dir (fun sock ->
          check "healthz" true
            (contains ~needle:"\"ok\":true" (body_of (get sock "/healthz")));
          check "apps endpoint lists the suite" true
            (contains ~needle:"nbody" (body_of (get sock "/v1/apps")));
          (* inflight slot, then the single queue slot, then shed *)
          let r1 = post sock "/v1/flows" {|{"app":"nbody","workload":"quick"}|} in
          check_int "first request accepted" 202 (status_of r1);
          check "accepted body carries the id" true
            (contains ~needle:"q000001" (body_of r1));
          wait_for "dispatch" (fun () -> flow_state sock "q000001" = "running");
          let r2 = post sock "/v1/flows" {|{"app":"nbody","workload":"quick"}|} in
          check_int "second request queues" 202 (status_of r2);
          let r3 = post sock "/v1/flows" {|{"app":"nbody","workload":"quick"}|} in
          check_int "overload burst is shed with 503" 503 (status_of r3);
          check "shed body says overloaded" true
            (contains ~needle:"overloaded" (body_of r3));
          check "shed request never got an id" false
            (contains ~needle:"q000003" (body_of (get sock "/v1/flows")));
          (* shedding didn't disturb the daemon or the in-flight run *)
          check "daemon healthy after shed" true
            (contains ~needle:"\"ok\":true" (body_of (get sock "/healthz")));
          let r400 = post sock "/v1/flows" {|{"app":"nbody","bogus":1}|} in
          check_int "malformed body rejected" 400 (status_of r400);
          let early = get sock "/v1/flows/q000001/report" in
          check_int "report of an unfinished flow is 409" 409 (status_of early);
          check_int "unknown flow is 404" 404
            (status_of (get sock "/v1/flows/q999999"));
          check_int "unknown path is 404" 404 (status_of (get sock "/nope"));
          check_int "wrong method is 405" 405
            (status_of
               (http_round sock "DELETE /v1/flows HTTP/1.1\r\nHost: x\r\n\r\n"));
          gate_open g;
          wait_for "both runs" (fun () ->
              terminal sock "q000001" && terminal sock "q000002");
          let oc = Lazy.force real_outcome in
          check_str "served report bytes equal Report.run_text"
            oc.Request.oc_text
            (body_of (get sock "/v1/flows/q000001/report"));
          check_str "served why bytes equal Report.why_text" oc.Request.oc_why
            (body_of (get sock "/v1/flows/q000001/why"));
          check "metrics endpoint exposes serve counters" true
            (contains ~needle:"\"serve.accepted\""
               (body_of (get sock "/v1/metrics")))))

let test_server_rate_limit () =
  with_dir (fun dir ->
      let runner _spec = failing_outcome in
      with_server ~rate:1.0 ~burst:1.0 ~runner dir (fun sock ->
          let body = {|{"app":"nbody","client":"alice"}|} in
          check_int "first request spends the bucket" 202
            (status_of (post sock "/v1/flows" body));
          let r = post sock "/v1/flows" body in
          check_int "second request is rate-limited" 429 (status_of r);
          check "429 carries Retry-After" true (contains ~needle:"Retry-After:" r);
          check_int "another client has its own bucket" 202
            (status_of (post sock "/v1/flows" {|{"app":"nbody","client":"bob"}|}))))

let test_server_resume () =
  with_dir (fun dir ->
      let store = Filename.concat dir "reqs" in
      (* a previous daemon died: one run in flight, one still queued, one
         finished — only the first two may be re-run *)
      List.iter
        (fun e ->
          match Serve.Store.save ~dir:store e with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "save failed: %s" msg)
        [
          entry "q000001" Serve.Store.Running;
          entry "q000002" Serve.Store.Queued;
          entry "q000003" Serve.Store.Done;
        ];
      let ran = Atomic.make 0 in
      let runner _spec =
        Atomic.incr ran;
        failing_outcome
      in
      with_server ~runner dir (fun sock ->
          wait_for "resumed runs" (fun () ->
              terminal sock "q000001" && terminal sock "q000002");
          check_int "exactly the unfinished requests re-ran" 2 (Atomic.get ran);
          check_str "terminal record untouched by resume" "done"
            (flow_state sock "q000003");
          check_str "finished report survives restarts" "report\nbytes\n"
            (body_of (get sock "/v1/flows/q000003/report"));
          check_int "id allocation resumes past the store" 202
            (status_of (post sock "/v1/flows" {|{"app":"nbody"}|}));
          wait_for "new run" (fun () -> terminal sock "q000004")))

let test_server_exclusive_dispatch () =
  with_dir (fun dir ->
      let lock = Mutex.create () in
      let events = ref [] in
      let record tag excl =
        Mutex.lock lock;
        events := (tag, excl) :: !events;
        Mutex.unlock lock
      in
      let runner spec =
        let excl = spec.Request.sp_step_budget <> None in
        record `Start excl;
        Unix.sleepf 0.15;
        record `Stop excl;
        failing_outcome
      in
      with_server ~max_inflight:4 ~runner dir (fun sock ->
          let submit body =
            check_int "accepted" 202 (status_of (post sock "/v1/flows" body))
          in
          submit {|{"app":"nbody"}|};
          submit {|{"app":"nbody"}|};
          submit {|{"app":"nbody","step_budget":1000000}|};
          submit {|{"app":"nbody"}|};
          wait_for "all four" (fun () ->
              List.for_all (terminal sock)
                [ "q000001"; "q000002"; "q000003"; "q000004" ]);
          (* a step-budgeted request must never overlap another request:
             the interpreter step cap is process-wide *)
          let timeline = List.rev !events in
          check_int "all four requests ran" 8 (List.length timeline);
          let overlap, _, _ =
            List.fold_left
              (fun (bad, inflight, excl_open) (tag, excl) ->
                match tag with
                | `Start ->
                  ( bad || (excl && inflight > 0) || excl_open,
                    inflight + 1,
                    excl_open || excl )
                | `Stop -> (bad, inflight - 1, excl_open && not excl))
              (false, 0, false) timeline
          in
          check "budgeted request ran alone start-to-stop" false overlap))

let suite =
  [
    Alcotest.test_case "codec round-trip" `Quick test_codec_round_trip;
    Alcotest.test_case "codec defaults" `Quick test_codec_defaults;
    Alcotest.test_case "codec rejects malformed bodies" `Quick
      test_codec_malformed;
    Alcotest.test_case "http parses a request" `Quick test_http_parse;
    Alcotest.test_case "http tolerates bare LF" `Quick test_http_bare_lf;
    Alcotest.test_case "http framing errors" `Quick test_http_errors;
    Alcotest.test_case "http response shape" `Quick test_http_response;
    Alcotest.test_case "limiter token bucket" `Quick test_limiter_bucket;
    Alcotest.test_case "limiter replay determinism" `Quick
      test_limiter_replay_determinism;
    Alcotest.test_case "limiter disabled at rate 0" `Quick
      test_limiter_disabled;
    Alcotest.test_case "admission bounded queue sheds" `Quick
      test_admission_shed;
    Alcotest.test_case "store round-trip" `Quick test_store_round_trip;
    Alcotest.test_case "store skips corrupt records" `Quick
      test_store_corruption_skipped;
    Alcotest.test_case "store recovery marks interrupted" `Quick
      test_store_recover;
    Alcotest.test_case "request run renders report text" `Slow
      test_request_run;
    Alcotest.test_case "request resolve errors" `Quick
      test_request_resolve_errors;
    Alcotest.test_case "server end-to-end" `Slow test_server_e2e;
    Alcotest.test_case "server rate limit" `Quick test_server_rate_limit;
    Alcotest.test_case "server resume after crash" `Quick test_server_resume;
    Alcotest.test_case "server exclusive dispatch" `Quick
      test_server_exclusive_dispatch;
  ]
