(* Tests for the analysis library: constant evaluation, affine subscripts,
   dependence verdicts, trip counts, hotspot detection/extraction,
   arithmetic intensity, data in/out, aliasing, scalarisation. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let parse = Parser.parse_program

(* ---- consteval ---- *)

let test_consteval_globals () =
  let p = parse "const int N = 4; const int M = N * 2 + 1; int main() { return 0; }" in
  let env = Consteval.of_program p in
  check "N" true (Consteval.lookup env "N" = Some 4);
  check "M chains" true (Consteval.lookup env "M" = Some 9)

let test_consteval_non_const_excluded () =
  let p = parse "int N = 4; int main() { return 0; }" in
  check "mutable global unknown" true
    (Consteval.lookup (Consteval.of_program p) "N" = None)

let test_consteval_exprs () =
  let env = Consteval.with_overrides Consteval.empty [ ("K", 3) ] in
  let e = Parser.parse_expr "K * 4 - 2" in
  check "expr" true (Consteval.eval_int env e = Some 10);
  check "unknown var" true (Consteval.eval_int env (Parser.parse_expr "J + 1") = None);
  check "div by zero none" true
    (Consteval.eval_int env (Parser.parse_expr "4 / (K - 3)") = None)

let test_consteval_ternary () =
  let env = Consteval.empty in
  check "cond" true (Consteval.eval_int env (Parser.parse_expr "1 < 2 ? 7 : 9") = Some 7)

(* ---- affine ---- *)

let classify ?(consts = Consteval.empty) src =
  Affine.classify ~index:"i" ~consts (Parser.parse_expr src)

let test_affine_simple () =
  (match classify "i" with
   | Affine.Affine { coeff = 1; offset = 0 } -> ()
   | _ -> Alcotest.fail "i");
  (match classify "i + 3" with
   | Affine.Affine { coeff = 1; offset = 3 } -> ()
   | _ -> Alcotest.fail "i+3");
  (match classify "2 * i - 1" with
   | Affine.Affine { coeff = 2; offset = -1 } -> ()
   | _ -> Alcotest.fail "2i-1")

let test_affine_const_coeff () =
  let consts = Consteval.with_overrides Consteval.empty [ ("D", 4) ] in
  match Affine.classify ~index:"i" ~consts (Parser.parse_expr "i * D + 2") with
  | Affine.Affine { coeff = 4; offset = 2 } -> ()
  | _ -> Alcotest.fail "i*D+2 with D=4"

let test_affine_invariant () =
  (match classify "j + 1" with Affine.Invariant -> () | _ -> Alcotest.fail "j+1");
  (match classify "42" with Affine.Invariant -> () | _ -> Alcotest.fail "42")

let test_affine_linear_plus () =
  let consts = Consteval.with_overrides Consteval.empty [ ("D", 4) ] in
  match Affine.classify ~index:"i" ~consts (Parser.parse_expr "i * D + j") with
  | Affine.Linear_plus { coeff = 4; _ } -> ()
  | _ -> Alcotest.fail "i*D+j"

let test_affine_unknown () =
  (match classify "i * i" with Affine.Unknown -> () | _ -> Alcotest.fail "i*i");
  (match classify "(i * 7) % 16" with Affine.Unknown -> () | _ -> Alcotest.fail "mod")

let test_affine_mentions () =
  check "mentions" true (Affine.mentions "i" (Parser.parse_expr "a[i + 1]"));
  check "not mentions" false (Affine.mentions "i" (Parser.parse_expr "a[j]"))

(* ---- dependence ---- *)

let loop_verdict ?(globals = "") body =
  let src = Printf.sprintf "%s\nvoid f(double* a, double* b, int n) { %s }" globals body in
  let p = parse src in
  let lm = List.hd (Query.loops p) in
  Dependence.analyse_loop p lm

let test_dep_parallel_map () =
  let v = loop_verdict "for (int i = 0; i < n; i++) { a[i] = b[i] * 2.0; }" in
  check "parallel" true v.Dependence.parallel

let test_dep_carried_distance () =
  let v = loop_verdict "for (int i = 1; i < n; i++) { a[i] = a[i - 1] + 1.0; }" in
  check "not parallel" false v.Dependence.parallel_with_reductions;
  check "array carried" true
    (List.exists
       (function Dependence.Array_carried _ -> true | _ -> false)
       v.Dependence.carried)

let test_dep_same_index_ok () =
  let v = loop_verdict "for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }" in
  check "a[i] += is not carried" true v.Dependence.parallel_with_reductions

let test_dep_scalar_reduction () =
  let v = loop_verdict "double s = 0.0; for (int i = 0; i < n; i++) { s += a[i]; } b[0] = s;" in
  (* the loop here is not the first statement; fetch it explicitly *)
  ignore v;
  let src = "void f(double* a, double* b, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += a[i]; } b[0] = s; }" in
  let p = parse src in
  let lm = List.hd (Query.loops p) in
  let v = Dependence.analyse_loop p lm in
  check "not strictly parallel" false v.Dependence.parallel;
  check "parallel with reductions" true v.Dependence.parallel_with_reductions;
  (match v.Dependence.reductions with
   | [ r ] ->
     check "target s" true (r.Dependence.red_target = "s");
     check "add op" true (r.Dependence.red_op = Dependence.Radd);
     check "scalar" false r.Dependence.red_is_array
   | _ -> Alcotest.fail "one reduction expected")

let test_dep_set_form_reduction () =
  let src = "void f(double* a, int n) { double s = 1.0; for (int i = 0; i < n; i++) { s = s * a[i]; } a[0] = s; }" in
  let p = parse src in
  let v = Dependence.analyse_loop p (List.hd (Query.loops p)) in
  check "s = s * e recognised" true
    (List.exists (fun (r : Dependence.reduction) -> r.red_op = Dependence.Rmul)
       v.Dependence.reductions)

let test_dep_scalar_carried () =
  let src = "void f(double* a, int n) { double prev = 0.0; for (int i = 0; i < n; i++) { a[i] = prev; prev = a[i] + 1.0; } }" in
  let p = parse src in
  let v = Dependence.analyse_loop p (List.hd (Query.loops p)) in
  check "carried scalar" true
    (List.exists
       (function Dependence.Scalar_carried "prev" -> true | _ -> false)
       v.Dependence.carried)

let test_dep_private_scalar_ok () =
  let v = loop_verdict "for (int i = 0; i < n; i++) { double t = b[i] * 2.0; a[i] = t + 1.0; }" in
  check "private scalar fine" true v.Dependence.parallel

let test_dep_private_array_ok () =
  let v =
    loop_verdict
      "for (int i = 0; i < n; i++) { double tmp[4]; for (int k = 0; k < 4; k++) { tmp[k] = b[i] + (double)k; } a[i] = tmp[3]; }"
  in
  check "local array private" true v.Dependence.parallel

let test_dep_array_reduction () =
  let src =
    "void f(double* acc, double* b, int n) { for (int j = 0; j < n; j++) { acc[0] += b[j]; } }"
  in
  let p = parse src in
  let v = Dependence.analyse_loop p (List.hd (Query.loops p)) in
  check "array reduction" true
    (List.exists
       (fun (r : Dependence.reduction) -> r.red_is_array && r.red_target = "acc")
       v.Dependence.reductions);
  check "no carried" true (v.Dependence.carried = [])

let test_dep_fixed_element_write () =
  let src = "void f(double* a, double* b, int n) { for (int i = 0; i < n; i++) { a[0] = b[i]; } }" in
  let p = parse src in
  let v = Dependence.analyse_loop p (List.hd (Query.loops p)) in
  check "fixed-element write carried" false v.Dependence.parallel_with_reductions

let test_dep_flattened_2d () =
  let globals = "const int D = 4;" in
  let v =
    loop_verdict ~globals
      "for (int i = 0; i < n; i++) { for (int d = 0; d < D; d++) { a[i * D + d] = b[i * D + d] + 1.0; } }"
  in
  check "delinearised access parallel" true v.Dependence.parallel

let test_dep_flattened_2d_overflow () =
  (* inner range exceeds the stride: iterations can collide *)
  let globals = "const int D = 4;" in
  let v =
    loop_verdict ~globals
      "for (int i = 0; i < n; i++) { for (int d = 0; d < 9; d++) { a[i * D + d] = 0.0; } }"
  in
  check "overflowing block carried" false v.Dependence.parallel

let test_dep_nonaffine_conservative () =
  let v = loop_verdict "for (int i = 0; i < n; i++) { a[(i * 7) % 16] = b[i]; }" in
  check "non-affine write carried" false v.Dependence.parallel

let test_dep_gather_read_ok () =
  (* random reads of an array nobody writes do not serialise *)
  let v = loop_verdict "for (int i = 0; i < n; i++) { a[i] = b[(i * 7) % 16]; }" in
  check "gather read parallel" true v.Dependence.parallel

let test_static_trip_count () =
  let consts = Consteval.with_overrides Consteval.empty [ ("N", 10) ] in
  let header src =
    match (Parser.parse_stmt src).Ast.sdesc with
    | Ast.For (h, _) -> h
    | _ -> Alcotest.fail "not a for"
  in
  check "lt" true (Dependence.static_trip_count consts (header "for (int i = 0; i < N; i++) { }") = Some 10);
  check "le" true (Dependence.static_trip_count consts (header "for (int i = 0; i <= N; i++) { }") = Some 11);
  check "step" true (Dependence.static_trip_count consts (header "for (int i = 0; i < N; i += 3) { }") = Some 4);
  check "dynamic" true (Dependence.static_trip_count consts (header "for (int i = 0; i < n; i++) { }") = None)

let test_range_of () =
  let consts = Consteval.empty in
  let ranges v = if v = "j" then Some (0, 3) else None in
  check "range j+1" true
    (Dependence.range_of ranges consts (Parser.parse_expr "j + 1") = Some (1, 4));
  check "range 2*j" true
    (Dependence.range_of ranges consts (Parser.parse_expr "2 * j") = Some (0, 6));
  check "range unknown" true
    (Dependence.range_of ranges consts (Parser.parse_expr "k") = None)

let test_affine_negative_coeff () =
  match classify "3 - i" with
  | Affine.Affine { coeff = -1; offset = 3 } -> ()
  | _ -> Alcotest.fail "3 - i"

let test_affine_sub_of_invariants () =
  (match classify "n - 1" with Affine.Invariant -> () | _ -> Alcotest.fail "n-1")

let test_dep_write_write_distance () =
  (* two writes with distinct offsets collide across iterations *)
  let v = loop_verdict "for (int i = 0; i < n; i++) { a[i] = 1.0; a[i + 1] = 2.0; }" in
  check "overlapping writes carried" false v.Dependence.parallel

let test_dep_disjoint_strided_writes () =
  (* a[2i] and a[2i+1] never collide *)
  let v = loop_verdict "for (int i = 0; i < n; i++) { a[2 * i] = 1.0; a[2 * i + 1] = 2.0; }" in
  check "odd/even writes parallel" true v.Dependence.parallel

(* ---- trip count analysis ---- *)

let test_tripcount_dynamic () =
  let p = parse "int main() { int s = 0; for (int i = 0; i < 12; i++) { s += i; } return s; }" in
  let infos = Tripcount.analyse p in
  match infos with
  | [ info ] ->
    checki "iterations" 12 info.Tripcount.tc_iterations;
    checki "entries" 1 info.Tripcount.tc_entries;
    check "static agrees" true (info.Tripcount.tc_static = Some 12)
  | _ -> Alcotest.fail "one loop expected"

(* ---- hotspot ---- *)

let hot_src =
  "int main() {\n\
   double a[64];\n\
   double out[64];\n\
   for (int i = 0; i < 64; i++) { a[i] = rand01(); }\n\
   for (int i = 0; i < 64; i++) { double t = 0.0; for (int j = 0; j < 64; j++) { t += a[i] * a[j]; } out[i] = t; }\n\
   double s = 0.0;\n\
   for (int i = 0; i < 64; i++) { s += out[i]; }\n\
   print_float(s);\n\
   return 0; }"

let test_hotspot_detect_ranks () =
  let p = parse hot_src in
  match Hotspot.detect p with
  | h :: _ ->
    check "hottest covers most of run" true (h.Hotspot.hs_share > 0.5)
  | [] -> Alcotest.fail "no hotspots"

let test_hotspot_extract () =
  let p = parse hot_src in
  (* pick the hottest depth-0 loop: the O(n^2) nest *)
  let h =
    List.find (fun (h : Hotspot.hotspot) -> h.hs_depth = 0 && h.hs_share > 0.5)
      (Hotspot.detect p)
  in
  match Hotspot.extract p ~sid:h.Hotspot.hs_sid ~kernel_name:"knl" with
  | Error e -> Alcotest.fail e
  | Ok ex ->
    check "kernel exists" true (Ast.find_func ex.Hotspot.ex_program "knl" <> None);
    (* the extracted program must behave identically *)
    let r1 = Machine.run p in
    let r2 = Machine.run ex.Hotspot.ex_program in
    Alcotest.(check (list string)) "same output" r1.Machine.output r2.Machine.output

let test_hotspot_extract_scalar_write_rejected () =
  let p =
    parse
      "int main() { double s = 0.0; for (int i = 0; i < 9; i++) { s += (double)i; } print_float(s); return 0; }"
  in
  let h = List.hd (Hotspot.detect p) in
  match Hotspot.extract p ~sid:h.Hotspot.hs_sid ~kernel_name:"knl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "extraction of scalar-writing loop must fail"

let test_hotspot_extract_globals_not_params () =
  let p =
    parse
      "const int N = 16;\n\
       int main() { double a[N]; for (int i = 0; i < N; i++) { a[i] = 1.0; } print_float(a[0]); return 0; }"
  in
  let h = List.hd (Hotspot.detect p) in
  match Hotspot.extract p ~sid:h.Hotspot.hs_sid ~kernel_name:"knl" with
  | Error e -> Alcotest.fail e
  | Ok ex ->
    check "N stays global" true
      (List.for_all (fun (q : Ast.param) -> q.prm_name <> "N") ex.Hotspot.ex_params)

(* ---- intensity ---- *)

let test_intensity_flop_equiv () =
  let c = Counters.create () in
  c.Counters.flops_dp_add <- 10;
  c.Counters.flops_dp_div <- 1;
  c.Counters.flops_dp_special <- 1;
  Alcotest.(check (float 1e-9)) "weighted" 38.0 (Intensity.flop_equiv c)

let test_intensity_compute_bound () =
  let rs counters bytes =
    { Machine.rs_invocations = 1; rs_counters = counters; rs_traffic = [];
      rs_bytes_in = bytes; rs_bytes_out = 0 }
  in
  let c = Counters.create () in
  c.Counters.flops_dp_mul <- 1000;
  let m = Intensity.of_region_stats (rs c 10) in
  check "high AI compute bound" true (Intensity.compute_bound m);
  let m2 = Intensity.of_region_stats (rs c 10000) in
  check "low AI memory bound" false (Intensity.compute_bound m2)

let test_intensity_static_estimate () =
  let p = parse "void f(double* a, double* b, int n) { for (int i = 0; i < n; i++) { a[i] = b[i] * 2.0 + 1.0; } }" in
  let lm = List.hd (Query.loops p) in
  let est = Intensity.static_estimate p lm in
  check "flops per iter" true (est.Intensity.se_flops_per_iter >= 2.0);
  check "bytes per iter" true (est.Intensity.se_bytes_per_iter >= 16.0)

(* ---- data in/out ---- *)

let dio_src =
  "void knl(double* src, double* dst, int n) { for (int i = 0; i < n; i++) { dst[i] = src[i]; } }\n\
   int main() { double a[32]; double b[32]; for (int i = 0; i < 32; i++) { a[i] = 1.0; } knl(a, b, 32); print_float(b[5]); return 0; }"

let test_datainout () =
  let dio = Datainout.analyse (parse dio_src) ~kernel:"knl" in
  checki "in bytes" 256 dio.Datainout.dio_bytes_in;
  checki "out bytes" 256 dio.Datainout.dio_bytes_out;
  checki "invocations" 1 dio.Datainout.dio_invocations

let test_transfer_time () =
  let dio = Datainout.analyse (parse dio_src) ~kernel:"knl" in
  let t = Datainout.transfer_time dio ~bandwidth_bytes_per_s:1e9 ~latency_s:0.0 in
  Alcotest.(check (float 1e-12)) "512B at 1GB/s" 5.12e-07 t

(* ---- alias ---- *)

let test_alias_mark_restrict () =
  let p = parse dio_src in
  let report = Alias.analyse p in
  check "no alias observed" true (Alias.no_alias report "knl");
  let p = Alias.mark_restrict p ~fname:"knl" in
  let fn = Option.get (Ast.find_func p "knl") in
  check "pointers restrict" true
    (List.for_all
       (fun (q : Ast.param) ->
         match q.prm_ty with Ast.Tptr _ -> q.prm_restrict | _ -> true)
       fn.Ast.fparams)

(* ---- scalarize ---- *)

let scal_src =
  "void knl(double* acc, double* b, int n) {\n\
   for (int i = 0; i < n; i++) {\n\
   acc[i] = 0.0;\n\
   for (int j = 0; j < n; j++) { acc[i] += b[j]; }\n\
   }\n\
   }\n\
   int main() { double acc[8]; double b[8]; for (int i = 0; i < 8; i++) { b[i] = (double)i; } knl(acc, b, 8); print_float(acc[3]); return 0; }"

let test_scalarize_candidates () =
  let p = parse scal_src in
  let fn = Option.get (Ast.find_func p "knl") in
  let inner = List.hd (Query.inner_loops (List.hd (Query.outermost_loops fn))) in
  let cands = Scalarize.candidates p ~loop_sid:inner.Query.lm_stmt.Ast.sid in
  checki "one candidate" 1 (List.length cands);
  check "targets acc" true ((List.hd cands).Scalarize.ca_array = "acc")

let test_scalarize_apply_semantics () =
  let p = parse scal_src in
  let fn = Option.get (Ast.find_func p "knl") in
  let inner = List.hd (Query.inner_loops (List.hd (Query.outermost_loops fn))) in
  let p' = Scalarize.apply p ~loop_sid:inner.Query.lm_stmt.Ast.sid in
  let r1 = Machine.run p and r2 = Machine.run p' in
  Alcotest.(check (list string)) "same result" r1.Machine.output r2.Machine.output;
  (* and the inner loop must now be a scalar reduction *)
  let fn' = Option.get (Ast.find_func p' "knl") in
  let inner' = List.hd (Query.inner_loops (List.hd (Query.outermost_loops fn'))) in
  let v = Dependence.analyse_loop p' inner' in
  check "scalar reduction after" true
    (List.exists (fun (r : Dependence.reduction) -> not r.red_is_array)
       v.Dependence.reductions)

let test_scalarize_reduces_memory_traffic () =
  let p = parse scal_src in
  let fn = Option.get (Ast.find_func p "knl") in
  let inner = List.hd (Query.inner_loops (List.hd (Query.outermost_loops fn))) in
  let p' = Scalarize.apply p ~loop_sid:inner.Query.lm_stmt.Ast.sid in
  let r1 = Machine.run p and r2 = Machine.run p' in
  check "fewer stores after scalarisation" true
    (r2.Machine.counters.Counters.stores < r1.Machine.counters.Counters.stores)

let test_scalarize_no_candidates_noop () =
  let p = parse dio_src in
  let lm = List.hd (Query.loops p) in
  let p' = Scalarize.apply p ~loop_sid:lm.Query.lm_stmt.Ast.sid in
  Alcotest.(check string) "unchanged" (Pretty.program_to_string p) (Pretty.program_to_string p')

let suite =
  [
    Alcotest.test_case "consteval globals" `Quick test_consteval_globals;
    Alcotest.test_case "consteval non-const" `Quick test_consteval_non_const_excluded;
    Alcotest.test_case "consteval exprs" `Quick test_consteval_exprs;
    Alcotest.test_case "consteval ternary" `Quick test_consteval_ternary;
    Alcotest.test_case "affine simple" `Quick test_affine_simple;
    Alcotest.test_case "affine const coeff" `Quick test_affine_const_coeff;
    Alcotest.test_case "affine invariant" `Quick test_affine_invariant;
    Alcotest.test_case "affine linear_plus" `Quick test_affine_linear_plus;
    Alcotest.test_case "affine unknown" `Quick test_affine_unknown;
    Alcotest.test_case "affine mentions" `Quick test_affine_mentions;
    Alcotest.test_case "dep parallel map" `Quick test_dep_parallel_map;
    Alcotest.test_case "dep carried distance" `Quick test_dep_carried_distance;
    Alcotest.test_case "dep same index ok" `Quick test_dep_same_index_ok;
    Alcotest.test_case "dep scalar reduction" `Quick test_dep_scalar_reduction;
    Alcotest.test_case "dep set-form reduction" `Quick test_dep_set_form_reduction;
    Alcotest.test_case "dep scalar carried" `Quick test_dep_scalar_carried;
    Alcotest.test_case "dep private scalar" `Quick test_dep_private_scalar_ok;
    Alcotest.test_case "dep private array" `Quick test_dep_private_array_ok;
    Alcotest.test_case "dep array reduction" `Quick test_dep_array_reduction;
    Alcotest.test_case "dep fixed element write" `Quick test_dep_fixed_element_write;
    Alcotest.test_case "dep flattened 2d" `Quick test_dep_flattened_2d;
    Alcotest.test_case "dep flattened 2d overflow" `Quick test_dep_flattened_2d_overflow;
    Alcotest.test_case "dep non-affine conservative" `Quick test_dep_nonaffine_conservative;
    Alcotest.test_case "dep gather read ok" `Quick test_dep_gather_read_ok;
    Alcotest.test_case "static trip count" `Quick test_static_trip_count;
    Alcotest.test_case "range_of" `Quick test_range_of;
    Alcotest.test_case "affine negative coeff" `Quick test_affine_negative_coeff;
    Alcotest.test_case "affine invariant sub" `Quick test_affine_sub_of_invariants;
    Alcotest.test_case "dep write-write distance" `Quick test_dep_write_write_distance;
    Alcotest.test_case "dep strided disjoint writes" `Quick test_dep_disjoint_strided_writes;
    Alcotest.test_case "tripcount dynamic" `Quick test_tripcount_dynamic;
    Alcotest.test_case "hotspot detect" `Quick test_hotspot_detect_ranks;
    Alcotest.test_case "hotspot extract" `Quick test_hotspot_extract;
    Alcotest.test_case "hotspot scalar write rejected" `Quick test_hotspot_extract_scalar_write_rejected;
    Alcotest.test_case "hotspot globals not params" `Quick test_hotspot_extract_globals_not_params;
    Alcotest.test_case "intensity flop equiv" `Quick test_intensity_flop_equiv;
    Alcotest.test_case "intensity compute bound" `Quick test_intensity_compute_bound;
    Alcotest.test_case "intensity static estimate" `Quick test_intensity_static_estimate;
    Alcotest.test_case "data in/out" `Quick test_datainout;
    Alcotest.test_case "transfer time" `Quick test_transfer_time;
    Alcotest.test_case "alias mark restrict" `Quick test_alias_mark_restrict;
    Alcotest.test_case "scalarize candidates" `Quick test_scalarize_candidates;
    Alcotest.test_case "scalarize semantics" `Quick test_scalarize_apply_semantics;
    Alcotest.test_case "scalarize reduces traffic" `Quick test_scalarize_reduces_memory_traffic;
    Alcotest.test_case "scalarize noop" `Quick test_scalarize_no_candidates_noop;
  ]
