(* Tests for the benchmark applications: every app parses, typechecks,
   runs deterministically on both workloads, and exposes the loop
   structure its paper-mandated classification depends on. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_all_parse_and_typecheck () =
  List.iter
    (fun (app : App.t) ->
      let p = App.program app in
      check (app.app_slug ^ " typechecks") true (Typecheck.check_program p = Ok ()))
    Suite.all

let test_all_run_and_print () =
  List.iter
    (fun (app : App.t) ->
      let r = App.run app in
      check (app.app_slug ^ " prints a finite result") true
        (match r.Machine.output with
         | [ s ] ->
           (match float_of_string_opt s with
            | Some f -> Float.is_finite f
            | None -> false)
         | _ -> false))
    Suite.all

let test_all_deterministic () =
  List.iter
    (fun (app : App.t) ->
      let a = (App.run app).Machine.output in
      let b = (App.run app).Machine.output in
      Alcotest.(check (list string)) (app.app_slug ^ " deterministic") a b)
    Suite.all

let test_workload_overrides_change_behaviour () =
  let small = (App.run ~overrides:[ ("N", 64); ("STEPS", 1) ] Nbody.app).Machine.output in
  let big = (App.run ~overrides:[ ("N", 96); ("STEPS", 1) ] Nbody.app).Machine.output in
  check "different workloads differ" true (small <> big)

let test_slugs_unique () =
  let slugs = List.map (fun (a : App.t) -> a.app_slug) Suite.all in
  checki "five apps" 5 (List.length slugs);
  checki "unique" 5 (List.length (List.sort_uniq compare slugs))

let test_find () =
  check "find nbody" true (Suite.find "nbody" <> None);
  check "find unknown" true (Suite.find "nope" = None)

let test_sp_tolerance () =
  check "rush larsen strict" true
    (Suite.sp_rel_tolerance Rush_larsen.app < Suite.sp_rel_tolerance Nbody.app)

let hotspot_loop (app : App.t) =
  let p = App.program app in
  let config =
    { Machine.default_config with
      overrides = App.machine_overrides app.app_test_overrides }
  in
  let hs = Hotspot.detect ~config p in
  (p, hs)

let test_nbody_structure () =
  (* hotspot: parallel outer loop, inner j loop carries FP reductions with a
     dynamic bound (the PSA's GPU case) *)
  let p = App.program Nbody.app in
  let fn = Option.get (Ast.find_func p "main") in
  let loops = Query.loops_in_func fn in
  check "has a depth-2 nest" true
    (List.exists (fun (lm : Query.loop_match) -> Query.loop_depth lm.lm_ctx = 2) loops)

let test_kmeans_memory_bound_shape () =
  (* the assignment loop streams D doubles per point per candidate check,
     keeping FLOPs/byte low: verified end-to-end in the flow tests; here we
     check the structural precondition (flattened 2D accesses) *)
  let p = App.program Kmeans.app in
  let consts = Consteval.of_program p in
  check "D is a small constant" true
    (match Consteval.lookup consts "D" with Some d -> d <= 8 | None -> false)

let test_adpredictor_unrollable_inner () =
  let p = App.program Adpredictor.app in
  let consts = Consteval.of_program p in
  (match Consteval.lookup consts "F" with
   | Some f -> check "F within PSA unroll threshold" true (f <= Psa.default_config.Psa.unroll_threshold)
   | None -> Alcotest.fail "F missing")

let test_rush_larsen_many_transcendentals () =
  (* the kernel body must be big enough to overmap both FPGAs: ~4 exps per
     gate across 10 gates *)
  let p = App.program Rush_larsen.app in
  let exp_calls =
    Query.select_exprs p (fun e ->
        match e.Ast.edesc with Ast.Call ("exp", _) -> true | _ -> false)
  in
  check "at least 40 exp sites" true (List.length exp_calls >= 40)

let test_bezier_inner_bounds_above_threshold () =
  let p = App.program Bezier.app in
  let consts = Consteval.of_program p in
  match Consteval.lookup consts "CP" with
  | Some cp ->
    check "CP-1 above PSA threshold" true
      (cp - 1 > Psa.default_config.Psa.unroll_threshold)
  | None -> Alcotest.fail "CP missing"

let test_override_keys_are_globals () =
  (* a typo in a workload key would silently do nothing: forbid *)
  List.iter
    (fun (app : App.t) ->
      let p = App.program app in
      let globals = List.map (fun (d : Ast.decl) -> d.dname) (Ast.globals_decls p) in
      List.iter
        (fun (key, _) ->
          check
            (Printf.sprintf "%s override %s is a global" app.app_slug key)
            true (List.mem key globals))
        (app.app_eval_overrides @ app.app_test_overrides))
    Suite.all

let test_outer_scale_positive () =
  List.iter
    (fun (app : App.t) ->
      check (app.app_slug ^ " scale positive") true (app.app_outer_scale >= 1))
    Suite.all

let test_hotspots_cover_runs () =
  List.iter
    (fun (app : App.t) ->
      let _, hs = hotspot_loop app in
      match hs with
      | h :: _ -> check (app.app_slug ^ " has a dominant loop") true (h.Hotspot.hs_share > 0.5)
      | [] -> Alcotest.fail "no loops")
    Suite.all

let suite =
  [
    Alcotest.test_case "all parse+typecheck" `Quick test_all_parse_and_typecheck;
    Alcotest.test_case "all run" `Quick test_all_run_and_print;
    Alcotest.test_case "all deterministic" `Quick test_all_deterministic;
    Alcotest.test_case "workload overrides" `Quick test_workload_overrides_change_behaviour;
    Alcotest.test_case "slugs unique" `Quick test_slugs_unique;
    Alcotest.test_case "suite find" `Quick test_find;
    Alcotest.test_case "sp tolerance" `Quick test_sp_tolerance;
    Alcotest.test_case "nbody structure" `Quick test_nbody_structure;
    Alcotest.test_case "kmeans shape" `Quick test_kmeans_memory_bound_shape;
    Alcotest.test_case "adpredictor inner unrollable" `Quick test_adpredictor_unrollable_inner;
    Alcotest.test_case "rush larsen transcendentals" `Quick test_rush_larsen_many_transcendentals;
    Alcotest.test_case "bezier inner bounds" `Quick test_bezier_inner_bounds_above_threshold;
    Alcotest.test_case "override keys are globals" `Quick test_override_keys_are_globals;
    Alcotest.test_case "outer scale positive" `Quick test_outer_scale_positive;
    Alcotest.test_case "hotspots cover runs" `Quick test_hotspots_cover_runs;
  ]
