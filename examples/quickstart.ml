(* Quickstart: run the informed PSA-flow end to end on one benchmark.

   The flow profiles the unoptimised K-Means source, extracts its hotspot,
   runs the target-independent analyses, lets the Fig. 3 strategy pick a
   target at branch point A (K-Means is memory-bound, so the multi-thread
   CPU wins), and evaluates the generated design.

     dune exec examples/quickstart.exe *)

let () =
  let app = Kmeans.app in
  Printf.printf "== %s ==\n%s\n\n" app.App.app_name app.App.app_descr;
  match Engine.run ~workload:app.App.app_test_overrides ~mode:Pipeline.Informed app with
  | Error msg -> prerr_endline ("flow failed: " ^ msg)
  | Ok report ->
    (* 1. what the strategy decided, and why *)
    print_string (Report.decision_text report);
    (* 2. the evaluated design(s) of the chosen branch *)
    Printf.printf "\nbaseline (single-thread CPU hotspot): %.4g s\n\n"
      report.Engine.rep_baseline_s;
    print_string (Report.design_table report);
    (* 3. the generated source is ordinary, human-readable code *)
    (match report.Engine.rep_designs with
     | design :: _ ->
       let kernel = Option.get report.Engine.rep_analysed.Artifact.art_kernel in
       (match Ast.find_func design.Design.d_program kernel with
        | Some fn ->
          print_endline "\ngenerated kernel (excerpt):";
          print_string (Pretty.func_to_string fn)
        | None -> ())
     | [] -> ())
