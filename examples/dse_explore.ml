(* Design-space exploration up close.

   Reproduces the two DSE mechanisms the paper illustrates:

   - Fig. 2's "unroll until overmap": double the unroll factor, query the
     FPGA resource report, stop above 90% utilisation — traced here factor
     by factor on both FPGAs;
   - the per-device GPU blocksize sweep, showing how the best launch
     configuration differs between the GTX 1080 Ti and RTX 2080 Ti.

     dune exec examples/dse_explore.exe *)

let () =
  let app = Adpredictor.app in
  let art = Artifact.create app ~workload:app.App.app_test_overrides in
  match Graph.run Pipeline.target_independent art with
  | Error msg -> prerr_endline msg
  | Ok [ analysed ] ->
    let art = analysed.Graph.oc_artifact in
    let kernel = Option.get art.Artifact.art_kernel in
    let kp = Artifact.kprofile_exn art in
    let kp = Kprofile.scale kp app.App.app_outer_scale in

    (* ---- Fig. 2: unroll-until-overmap on both FPGAs ---- *)
    let one = Result.get_ok (Oneapi.generate art.Artifact.art_program ~kernel) in
    let prog = Unroll.unroll_fixed_inner one.Oneapi.oneapi_program ~kernel:one.Oneapi.oneapi_kernel_fn in
    let prog = Sp_transforms.apply_all prog ~fnames:[ one.Oneapi.oneapi_kernel_fn ] in
    let ks = Result.get_ok (Kstatic.of_kernel prog ~require_unroll_pragma:true ~fname:one.Oneapi.oneapi_kernel_fn) in
    Printf.printf "== unroll-until-overmap DSE on %s's kernel ==\n" app.App.app_name;
    List.iter
      (fun (name, spec) ->
        let r =
          Unroll_dse.run spec ks kp ~zero_copy:spec.Device.usm_zero_copy prog
            ~kernel_fn:one.Oneapi.oneapi_kernel_fn
        in
        Printf.printf "\n%s:\n" name;
        List.iter
          (fun (factor, alm_frac) ->
            Printf.printf "  unroll %-4d -> %5.1f%% ALMs %s\n" factor
              (100.0 *. alm_frac)
              (if alm_frac > Fpga_model.overmap_threshold then "(overmapped: stop)" else ""))
          r.Unroll_dse.ud_trace;
        match r.Unroll_dse.ud_unroll with
        | Some u ->
          Printf.printf "  selected unroll %d, est. %.3g s (II=%.0f)\n" u
            r.Unroll_dse.ud_estimate.Fpga_model.fe_time_s
            r.Unroll_dse.ud_estimate.Fpga_model.fe_ii
        | None -> print_endline "  not synthesisable at unroll 1")
      [ ("Arria10", Device.pac_arria10); ("Stratix10", Device.pac_stratix10) ];

    (* ---- per-device blocksize sweep ---- *)
    let hip = Result.get_ok (Hip.generate art.Artifact.art_program ~kernel) in
    let ksg =
      Result.get_ok
        (Kstatic.of_kernel hip.Hip.hip_program ~fname:hip.Hip.hip_body_fn
           ~thread_index:"i")
    in
    Printf.printf "\n== blocksize DSE on %s's kernel ==\n" app.App.app_name;
    List.iter
      (fun (name, spec) ->
        let r =
          Blocksize_dse.run spec ksg kp ~base:Gpu_model.default_params
            hip.Hip.hip_program ~launch_fn:hip.Hip.hip_launch_fn
        in
        Printf.printf "\n%s:\n" name;
        List.iter
          (fun (bs, t) ->
            Printf.printf "  blocksize %-5d -> %.3g s%s\n" bs t
              (if bs = r.Blocksize_dse.bd_blocksize then "   <- selected" else ""))
          r.Blocksize_dse.bd_sweep;
        Printf.printf "  occupancy %.0f%%, %d regs/thread\n"
          (100.0 *. r.Blocksize_dse.bd_estimate.Gpu_model.ge_occupancy)
          r.Blocksize_dse.bd_estimate.Gpu_model.ge_regs_per_thread)
      [ ("GTX 1080 Ti", Device.gtx_1080_ti); ("RTX 2080 Ti", Device.rtx_2080_ti) ]
  | Ok _ -> prerr_endline "unexpected fan-out"
