(* Authoring a custom PSA-flow.

   The paper stresses that design-flows are programmable: tasks are
   building blocks and branch-point strategies are replaceable.  This
   example (1) codifies a brand-new analysis task, (2) writes a custom PSA
   strategy that only ever offloads to the GPU when the kernel carries
   enough work per byte of transfer, and (3) composes both with the stock
   task repository into a new flow graph.

     dune exec examples/custom_flow.exe *)

(* 1. a new codified task: report the deepest loop nest of the kernel *)
let nest_depth_analysis =
  Task.make ~name:"Loop Nest Depth Analysis" ~kind:Task.Analysis
    ~scope:Task.Target_independent (fun art ->
      let kernel = Artifact.kernel_exn art in
      match Ast.find_func art.Artifact.art_program kernel with
      | None -> Error "kernel disappeared"
      | Some fn ->
        let depth =
          List.fold_left
            (fun acc (lm : Query.loop_match) -> max acc (Query.loop_depth lm.lm_ctx + 1))
            0 (Query.loops_in_func fn)
        in
        Ok (Artifact.logf art "kernel loop nest depth: %d" depth))

(* 2. a custom strategy: offload to the GPU only when the hotspot performs
   at least [threshold] weighted flops per byte it would transfer *)
let flops_per_transfer_byte_strategy ~threshold art =
  match art.Artifact.art_kprofile with
  | None -> Error "analyses have not run"
  | Some kp ->
    let flops = Intensity.flop_equiv kp.Kprofile.kp_counters in
    let bytes = float_of_int (kp.Kprofile.kp_bytes_in + kp.Kprofile.kp_bytes_out) in
    let ratio = if bytes = 0.0 then Float.infinity else flops /. bytes in
    Printf.printf "custom strategy: %.1f weighted flops per transferred byte\n" ratio;
    let path = if ratio >= threshold then "gpu" else "cpu" in
    Graph.select
      ~reasons:
        [ Printf.sprintf "%.1f weighted flops per transferred byte -> %s" ratio path ]
      [ path ]

(* 3. compose a new flow: stock analyses, the custom task, a two-path
   branch point driven by the custom strategy *)
let my_flow =
  Graph.Seq
    [
      Pipeline.target_independent;
      Graph.Task nest_depth_analysis;
      Graph.Branch
        {
          Graph.bp_name = "A'";
          bp_select = flops_per_transfer_byte_strategy ~threshold:20.0;
          bp_paths =
            [
              ( "cpu",
                Graph.Seq
                  [
                    Graph.Task Tasks.multi_thread_parallel_loops;
                    Graph.Task Tasks.omp_num_threads_dse;
                  ] );
              ( "gpu",
                Graph.Seq
                  [
                    Graph.Task Tasks.generate_hip_design;
                    Graph.Task Tasks.gpu_sp_math_fns;
                    Graph.Task Tasks.gpu_sp_numeric_literals;
                    Graph.Task Tasks.introduce_shared_mem_buf;
                    Graph.Task Tasks.employ_hip_pinned_memory;
                    Graph.Task Tasks.profile_gpu_design;
                    Graph.Task (Tasks.gpu_blocksize_dse Device.rtx_2080_ti);
                  ] );
            ];
        };
    ]

let run app =
  Printf.printf "\n-- %s through the custom flow --\n" (app : App.t).app_name;
  let art = Artifact.create app ~workload:app.App.app_test_overrides in
  match Graph.run my_flow art with
  | Error msg -> prerr_endline ("flow failed: " ^ msg)
  | Ok outcomes ->
    List.iter
      (fun (oc : Graph.outcome) ->
        let path =
          String.concat " -> "
            (List.map (fun (b, p) -> Printf.sprintf "%s:%s" b p) oc.Graph.oc_path)
        in
        let art = oc.Graph.oc_artifact in
        let time =
          match art.Artifact.art_design with
          | Some ds ->
            (match ds.Artifact.ds_estimate_s with
             | Some t -> Printf.sprintf "%.3g s" t
             | None -> "n/a")
          | None -> "?"
        in
        Printf.printf "path %-10s estimated design time %s\n" path time;
        (* the last few task-log lines show what happened *)
        let log = art.Artifact.art_log in
        let tail = List.filteri (fun i _ -> i >= List.length log - 4) log in
        List.iter (fun line -> Printf.printf "  %s\n" line) tail)
      outcomes

let () =
  run Nbody.app;   (* compute-heavy: the custom strategy offloads *)
  run Kmeans.app   (* streaming: it stays on the CPU *)
