(* Cost and performance trade-offs (the Section IV-D analysis).

   Generate all five designs for Bezier with the uninformed flow, then ask
   two questions the paper poses for heterogeneous clouds:

   1. how does the *monetary* cost of FPGA vs GPU execution move as their
      relative prices change (Fig. 6)?
   2. under a concrete price sheet, which design is cheapest — and is it
      the fastest one?

     dune exec examples/cost_tradeoff.exe *)

let () =
  let app = Bezier.app in
  match Engine.run ~workload:app.App.app_test_overrides ~mode:Pipeline.Uninformed app with
  | Error msg -> prerr_endline ("flow failed: " ^ msg)
  | Ok report ->
    Printf.printf "== %s: %d generated designs ==\n\n" app.App.app_name
      (List.length report.Engine.rep_designs);
    print_string (Report.design_table report);

    (* 1. the Fig. 6 price-ratio sweep for this app *)
    (match Fig6.of_reports [ report ] with
     | [ series ] ->
       Printf.printf
         "\nStratix10 vs RTX 2080 Ti: t_fpga = %.3g s, t_gpu = %.3g s\n"
         series.Fig6.f6_fpga_s series.Fig6.f6_gpu_s;
       List.iter
         (fun (ratio, rel) ->
           Printf.printf "  price ratio %4.2f -> FPGA costs %.2fx the GPU run\n" ratio rel)
         series.Fig6.f6_points;
       Printf.printf
         "  crossover: the FPGA stays cheaper while its price is below %.2fx the GPU's\n"
         series.Fig6.f6_crossover
     | _ -> print_endline "\n(no FPGA+GPU design pair for this app)");

    (* 2. cheapest design under a concrete price sheet *)
    let pricing = Cost.default_pricing in
    let alternatives =
      List.filter_map
        (fun (d : Design.t) ->
          match d.Design.d_time_s with
          | Some t -> Some (d.Design.d_target, t)
          | None -> None)
        report.Engine.rep_designs
    in
    (match Cost.cheapest pricing alternatives, Engine.best_design report with
     | Some (target, time_s, cost), Some fastest ->
       Printf.printf
         "\nunder prices cpu=$%.2f gpu=$%.2f fpga=$%.2f per hour:\n"
         pricing.Cost.cpu_per_hour pricing.Cost.gpu_per_hour pricing.Cost.fpga_per_hour;
       Printf.printf "  cheapest: %-24s %.3g s, $%.3g per run\n" (Target.short target)
         time_s cost;
       Printf.printf "  fastest:  %-24s" (Target.short fastest.Design.d_target);
       (match fastest.Design.d_time_s with
        | Some t -> Printf.printf " %.3g s\n" t
        | None -> print_newline ());
       if Target.short target <> Target.short fastest.Design.d_target then
         print_endline
           "  -> the most performant design is not the most cost-effective one"
     | _, _ -> ());

    (* 3. Fig. 3's budget feedback: squeeze the budget until the informed
       branch is revised *)
    print_endline "\nbudget feedback at branch point A:";
    List.iter
      (fun budget ->
        match
          Engine.run_budgeted ~workload:app.App.app_test_overrides ~budget app
        with
        | Error msg -> prerr_endline msg
        | Ok br ->
          let chain =
            String.concat " -> "
              (List.map (fun (a : Engine.attempt) -> a.Engine.at_branch)
                 br.Engine.br_attempts)
          in
          Printf.printf "  budget $%-8g tried %-22s accepted %s%s\n" budget chain
            (match br.Engine.br_accepted with
             | Some { Engine.at_design = Some d; _ } -> Target.short d.Design.d_target
             | _ -> "none")
            (if br.Engine.br_within_budget then "" else " (over budget)"))
      [ 1.0; 2e-7; 1e-12 ]
