(* Runtime mapping over a heterogeneous pool, and a learned PSA strategy.

   Section IV-D: with the uninformed flow's diverse designs in hand,
   computations can be mapped at *runtime* onto priced cloud resources.
   We schedule a stream of AdPredictor jobs over a small CPU+GPU+FPGA pool
   under both policies, then demonstrate the paper's future-work item — an
   ML-based PSA strategy — trained on the suite's own flow runs and
   plugged into branch point A in place of the Fig. 3 tree.

     dune exec examples/runtime_mapping.exe *)

let () =
  (* one uninformed run per benchmark: design sets + training data *)
  let reports =
    List.filter_map
      (fun (app : App.t) ->
        match
          Engine.run ~workload:app.App.app_test_overrides ~mode:Pipeline.Uninformed app
        with
        | Ok r -> Some r
        | Error msg ->
          Printf.eprintf "%s: %s\n" app.app_slug msg;
          None)
      Suite.all
  in

  (* ---- 1. runtime scheduling of AdPredictor jobs ---- *)
  (match
     List.find_opt
       (fun (r : Engine.report) -> r.Engine.rep_app.App.app_slug = "adpredictor")
       reports
   with
   | None -> prerr_endline "no adpredictor report"
   | Some rep ->
     let alternatives = Scheduler.alternatives_of_report rep in
     let pool = { Scheduler.cpu_instances = 2; gpu_instances = 1; fpga_instances = 1 } in
     let jobs =
       List.init 10 (fun i ->
           { Scheduler.job_id = i; job_scale = 1.0 +. (0.5 *. float_of_int (i mod 3)) })
     in
     Printf.printf "== scheduling 10 AdPredictor jobs on 2xCPU + 1xGPU + 1xFPGA ==\n";
     List.iter
       (fun (name, policy) ->
         match Scheduler.run ~policy ~pool ~alternatives jobs with
         | Error msg -> prerr_endline msg
         | Ok sc ->
           Printf.printf "\npolicy: %s\n" name;
           print_string (Scheduler.render sc))
       [ ("minimise cost", Scheduler.Min_cost); ("minimise makespan", Scheduler.Min_makespan) ]);

  (* ---- 2. a learned PSA strategy at branch point A ---- *)
  let examples = List.filter_map Psa_ml.label_of_report reports in
  match Psa_ml.train examples with
  | Error msg -> prerr_endline msg
  | Ok model ->
    Printf.printf "\n== learned PSA (1-NN over %d labelled flow runs) ==\n"
      (List.length examples);
    List.iter
      (fun (rep : Engine.report) ->
        let art = rep.Engine.rep_analysed in
        let learned =
          match Psa_ml.strategy model art with
          | Ok { Graph.sel_paths = [ b ]; _ } -> b
          | Ok _ | Error _ -> "?"
        in
        let informed = rep.Engine.rep_decision.Psa.dec_path in
        Printf.printf "%-28s informed: %-5s learned: %-5s %s\n"
          rep.Engine.rep_app.App.app_name informed learned
          (if learned = informed then "" else "(differs)"))
      reports;
    (* the learned model can drive the actual flow, too *)
    (match
       Graph.run
         (Graph.with_select (Pipeline.full_flow Pipeline.Informed) ~branch:"A"
            (Psa_ml.strategy model))
         (Artifact.create Kmeans.app ~workload:Kmeans.app.App.app_test_overrides)
     with
     | Ok outcomes ->
       Printf.printf "\nK-Means through the ML-driven flow: %d design(s) via %s\n"
         (List.length outcomes)
         (String.concat ", "
            (List.concat_map
               (fun (oc : Graph.outcome) -> List.map snd oc.Graph.oc_path)
               outcomes))
     | Error msg -> prerr_endline msg)
