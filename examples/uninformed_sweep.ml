(* The uninformed mode over the whole suite: every benchmark is pushed down
   every branch, generating all five designs per application, and the
   fastest design is compared against what the informed Fig. 3 strategy
   would have picked — the paper's headline claim is that they agree.

     dune exec examples/uninformed_sweep.exe *)

let () =
  List.iter
    (fun (app : App.t) ->
      match
        Engine.run ~workload:app.App.app_test_overrides ~mode:Pipeline.Uninformed app
      with
      | Error msg -> Printf.eprintf "%s: %s\n" app.app_slug msg
      | Ok report ->
        Printf.printf "== %s ==\n" app.App.app_name;
        print_string (Report.design_table report);
        let informed =
          match Runs.auto_selected report with
          | Some d -> Target.short d.Design.d_target
          | None -> "none"
        in
        let best =
          match Engine.best_design report with
          | Some d -> Target.short d.Design.d_target
          | None -> "none"
        in
        Printf.printf "informed strategy picks: %-12s fastest measured: %-12s %s\n\n"
          informed best
          (if informed = best then "(agreement)" else "(MISMATCH)"))
    Suite.all
