(* Daemon smoke gate: start a real psaflowd, drive it over its Unix
   socket with hand-rolled HTTP, and verify the service invariants the
   unit tests cannot see from inside the process:

   - a served report is byte-identical to `psaflow run` stdout for the
     same spec (CLI run as a separate process);
   - repeat requests for the same kernel are cache splices: the
     cache.*.misses counters do not move;
   - an overload burst is shed with 503 without disturbing the daemon
     or the in-flight runs;
   - every finished request leaves a ledger record and a journal file;
   - SIGTERM drains cleanly (exit 0, socket removed) and a restart
     still serves the persisted history.

   Usage: servesmoke.exe PSAFLOWD_EXE PSAFLOW_EXE
   Everything runs under ./serve-smoke/ so CI can upload it. *)

let dir = "serve-smoke"

let sock = Filename.concat dir "psa.sock"

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("servesmoke: FAIL " ^ s); exit 1) fmt

let ok fmt = Printf.ksprintf (fun s -> print_endline ("servesmoke: ok " ^ s)) fmt

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

(* ---- raw HTTP over the unix socket ---- *)

let http_round text =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX sock);
      ignore (Unix.write_substring fd text 0 (String.length text));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      Buffer.contents buf)

let get path = http_round (Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\n\r\n" path)

let post path body =
  http_round
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s" path
       (String.length body) body)

let status_of resp =
  match String.split_on_char ' ' resp with
  | _ :: code :: _ -> ( try int_of_string code with Failure _ -> -1)
  | _ -> -1

let body_of resp =
  let rec find i =
    if i + 4 > String.length resp then ""
    else if String.sub resp i 4 = "\r\n\r\n" then
      String.sub resp (i + 4) (String.length resp - i - 4)
    else find (i + 1)
  in
  find 0

let wait_for ?(timeout = 120.0) what pred =
  let t0 = Unix.gettimeofday () in
  let rec loop () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      fail "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.1;
      loop ()
    end
  in
  loop ()

let flow_state id =
  let b = body_of (get ("/v1/flows/" ^ id)) in
  List.find_map
    (fun st ->
      if contains ~needle:(Printf.sprintf "\"state\":%S" st) b then Some st
      else None)
    [ "queued"; "running"; "done"; "failed"; "interrupted" ]
  |> Option.value ~default:"?"

let id_of resp =
  let b = body_of resp in
  let re = {|"id":"|} in
  let rec find i =
    if i + String.length re > String.length b then fail "no id in %s" b
    else if String.sub b i (String.length re) = re then
      String.sub b (i + String.length re) 7
    else find (i + 1)
  in
  find 0

(* Sum of every cache.*.misses counter in a /v1/metrics body. *)
let cache_misses () =
  let b = body_of (get "/v1/metrics") in
  let total = ref 0.0 in
  List.iter
    (fun field ->
      match String.split_on_char ':' field with
      | [ name; v ] when contains ~needle:"cache." name && contains ~needle:".misses" name
        -> ( try total := !total +. float_of_string v with Failure _ -> ())
      | _ -> ())
    (String.split_on_char ',' (String.map (function '{' | '}' | '"' -> ' ' | c -> c) b
                              |> String.split_on_char ' ' |> String.concat ""));
  !total

(* ---- subprocesses ---- *)

let spawn_daemon exe log =
  let out = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let pid =
    Unix.create_process exe
      [|
        exe; "--socket"; sock;
        "--cache"; Filename.concat dir ".psa-cache";
        "--ledger"; Filename.concat dir ".psa-runs";
        "--store"; Filename.concat dir ".psa-reqs";
        "--queue-cap"; "2"; "--max-inflight"; "1"; "--rate"; "0"; "--verbose";
      |]
      Unix.stdin out out
  in
  Unix.close out;
  pid

let run_cli exe args =
  (* capture stdout exactly: these bytes are compared against the
     daemon-served report *)
  let r, w = Unix.pipe () in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin w Unix.stderr in
  Unix.close w;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read r chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  Unix.close r;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> Buffer.contents buf
  | _, _ -> fail "CLI run failed: %s %s" exe (String.concat " " args)

let () =
  let psaflowd, psaflow =
    match Sys.argv with
    | [| _; d; f |] -> (d, f)
    | _ -> fail "usage: servesmoke PSAFLOWD_EXE PSAFLOW_EXE"
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  let daemon = spawn_daemon psaflowd (Filename.concat dir "daemon.log") in
  let term_and_reap () =
    (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
    snd (Unix.waitpid [] daemon)
  in
  (* never leave an orphan daemon behind a failure *)
  at_exit (fun () -> try Unix.kill daemon Sys.sigkill with Unix.Unix_error _ -> ());

  wait_for ~timeout:30.0 "daemon socket" (fun () ->
      Sys.file_exists sock
      && try contains ~needle:"\"ok\":true" (body_of (get "/healthz"))
         with Unix.Unix_error _ -> false);
  ok "daemon up on %s" sock;

  if not (contains ~needle:"nbody" (body_of (get "/v1/apps"))) then
    fail "/v1/apps does not list nbody";

  (* 1. a real flow, served report byte-identical to the CLI *)
  let body = {|{"app":"nbody","workload":"quick","client":"smoke"}|} in
  let r1 = post "/v1/flows" body in
  if status_of r1 <> 202 then fail "submit got %d" (status_of r1);
  let id1 = id_of r1 in
  wait_for "first flow" (fun () -> flow_state id1 = "done");
  let served = body_of (get ("/v1/flows/" ^ id1 ^ "/report")) in
  let cli =
    run_cli psaflow
      [ "run"; "nbody"; "--quick";
        "--cache"; Filename.concat dir ".psa-cache"; "--ledger"; "off" ]
  in
  if served <> cli then begin
    let dump name text =
      let oc = open_out (Filename.concat dir name) in
      output_string oc text;
      close_out oc
    in
    dump "served-report.txt" served;
    dump "cli-report.txt" cli;
    fail "daemon report differs from CLI report (see %s)" dir
  end;
  ok "served report is byte-identical to the CLI report (%d bytes)"
    (String.length served);
  if body_of (get ("/v1/flows/" ^ id1 ^ "/why")) = "" then
    fail "empty --why provenance";
  ok "provenance served";

  (* 2. repeat requests are cache splices: zero new misses *)
  let misses0 = cache_misses () in
  let r2 = post "/v1/flows" body and r3 = post "/v1/flows" body in
  if status_of r2 <> 202 || status_of r3 <> 202 then fail "repeat submits rejected";
  let id2 = id_of r2 and id3 = id_of r3 in
  wait_for "repeat flows" (fun () ->
      flow_state id2 = "done" && flow_state id3 = "done");
  let misses1 = cache_misses () in
  if misses1 > misses0 then
    fail "repeat requests recomputed: cache misses %g -> %g" misses0 misses1;
  ok "repeat requests were pure cache splices (misses %g, unchanged)" misses0;
  if body_of (get ("/v1/flows/" ^ id2 ^ "/report")) <> served then
    fail "spliced report differs from the original";
  ok "spliced report bytes identical";

  (* 3. overload burst: with one inflight slot and a queue of two, an
     8-request burst must shed with 503 and leave the daemon healthy *)
  let statuses = List.init 8 (fun _ -> status_of (post "/v1/flows" body)) in
  let count s = List.length (List.filter (( = ) s) statuses) in
  if count 503 < 1 then fail "burst produced no 503 shed";
  if count 202 < 1 then fail "burst produced no acceptance";
  if List.exists (fun s -> s <> 202 && s <> 503) statuses then
    fail "burst produced unexpected statuses: %s"
      (String.concat "," (List.map string_of_int statuses));
  if not (contains ~needle:"\"ok\":true" (body_of (get "/healthz"))) then
    fail "daemon unhealthy after shed burst";
  ok "burst: %d accepted, %d shed with 503, daemon healthy" (count 202) (count 503);
  let flows = body_of (get "/v1/flows") in
  wait_for "burst drains" (fun () ->
      not (contains ~needle:"\"state\":\"running\"" (body_of (get "/v1/flows")))
      && not (contains ~needle:"\"state\":\"queued\"" (body_of (get "/v1/flows"))));
  ignore flows;

  (* 4. persistence: ledger record + journal per finished request *)
  let detail = body_of (get ("/v1/flows/" ^ id1)) in
  if not (contains ~needle:"\"ledger\":" detail) then
    fail "finished flow has no ledger record: %s" detail;
  let journal = Filename.concat dir (Filename.concat ".psa-reqs" (id1 ^ ".journal.jsonl")) in
  if not (Sys.file_exists journal) then fail "missing journal %s" journal;
  ok "ledger record and journal present for %s" id1;

  (* 5. graceful drain on SIGTERM *)
  (match term_and_reap () with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "daemon exited %d on SIGTERM" n
  | _ -> fail "daemon killed by signal instead of draining");
  if Sys.file_exists sock then fail "socket file left behind after drain";
  ok "SIGTERM drained cleanly (exit 0, socket removed)";

  (* 6. restart: the persisted history is still served *)
  let daemon2 = spawn_daemon psaflowd (Filename.concat dir "daemon2.log") in
  at_exit (fun () -> try Unix.kill daemon2 Sys.sigkill with Unix.Unix_error _ -> ());
  wait_for ~timeout:30.0 "restarted daemon" (fun () ->
      Sys.file_exists sock
      && try contains ~needle:"\"ok\":true" (body_of (get "/healthz"))
         with Unix.Unix_error _ -> false);
  if flow_state id1 <> "done" then fail "restart lost %s" id1;
  if body_of (get ("/v1/flows/" ^ id1 ^ "/report")) <> served then
    fail "restart serves different report bytes";
  ok "restart serves the persisted history (%s still done, bytes identical)" id1;
  (try Unix.kill daemon2 Sys.sigterm with Unix.Unix_error _ -> ());
  (match Unix.waitpid [] daemon2 with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> fail "restarted daemon did not drain cleanly");
  print_endline "servesmoke: all checks passed"
