(* tracecheck - validate a Chrome trace-event file produced by --trace.

   Checks that every domain track is balanced (each E closes the most
   recent B of the same name) and that timestamps are non-decreasing per
   track, then prints a summary.  Optional requirements:

     tracecheck FILE [--require-kinds k1,k2,...] [--require-tids N]

   With --journal the FILE is instead validated as a flight-recorder
   journal (JSONL written by psaflow --journal or on run failure): every
   line must parse as an object carrying ts_us, kind and name fields.

     tracecheck --journal FILE [--require-kinds k1,k2,...]

   exit 0: valid (and requirements met); exit 1: invalid or missing
   coverage.  Used by CI on a psaflow --trace run. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let split_commas s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

(* One journal event per line; tolerate a trailing newline.  Returns the
   event count and the per-kind tallies, or the first bad line. *)
let validate_journal contents =
  let lines =
    String.split_on_char '\n' contents |> List.filter (fun l -> String.trim l <> "")
  in
  let kinds = Hashtbl.create 8 in
  let rec go i = function
    | [] ->
      Ok
        ( i,
          Hashtbl.fold (fun k n acc -> (k, n) :: acc) kinds []
          |> List.sort compare )
    | line :: rest -> (
      match Obs.Trace_json.parse line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" (i + 1) msg)
      | Ok j -> (
        let str name =
          match Obs.Trace_json.member name j with
          | Some (Obs.Trace_json.Str s) -> Some s
          | _ -> None
        in
        let num name =
          match Obs.Trace_json.member name j with
          | Some (Obs.Trace_json.Num _) -> true
          | _ -> false
        in
        match (num "ts_us", str "kind", str "name") with
        | true, Some kind, Some _ ->
          Hashtbl.replace kinds kind
            (1 + Option.value ~default:0 (Hashtbl.find_opt kinds kind));
          go (i + 1) rest
        | _ ->
          Error
            (Printf.sprintf "line %d: missing ts_us/kind/name fields" (i + 1))))
  in
  go 0 lines

let () =
  let file = ref None in
  let journal = ref false in
  let require_kinds = ref [] in
  let require_tids = ref 0 in
  let rec parse = function
    | [] -> ()
    | "--journal" :: rest ->
      journal := true;
      parse rest
    | "--require-kinds" :: v :: rest ->
      require_kinds := split_commas v;
      parse rest
    | "--require-tids" :: v :: rest ->
      require_tids := int_of_string v;
      parse rest
    | arg :: rest when !file = None && String.length arg > 0 && arg.[0] <> '-' ->
      file := Some arg;
      parse rest
    | arg :: _ ->
      Printf.eprintf "tracecheck: unexpected argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !file with
  | None ->
    prerr_endline
      "usage: tracecheck FILE [--require-kinds k1,k2,...] [--require-tids N]";
    exit 2
  | Some path ->
    (match read_file path with
     | exception Sys_error msg ->
       Printf.eprintf "tracecheck: %s\n" msg;
       exit 1
     | contents when !journal ->
       (match validate_journal contents with
        | Error msg ->
          Printf.eprintf "tracecheck: %s: INVALID journal: %s\n" path msg;
          exit 1
        | Ok (n, kinds) ->
          Printf.printf "%s: %d journal event(s)\n" path n;
          List.iter
            (fun (kind, c) -> Printf.printf "  %-14s %d event(s)\n" kind c)
            kinds;
          let missing =
            List.filter (fun k -> not (List.mem_assoc k kinds)) !require_kinds
          in
          if missing <> [] then begin
            Printf.eprintf "tracecheck: missing journal kind(s): %s\n"
              (String.concat ", " missing);
            exit 1
          end;
          print_endline "journal OK")
     | contents ->
       (match Obs.Trace_json.validate_string contents with
        | Error msg ->
          Printf.eprintf "tracecheck: %s: INVALID: %s\n" path msg;
          exit 1
        | Ok su ->
          Printf.printf "%s: %d events, %d domain track(s)\n" path
            su.Obs.Trace_json.su_events
            (List.length su.Obs.Trace_json.su_tids);
          List.iter
            (fun (cat, n) -> Printf.printf "  %-14s %d span(s)\n" cat n)
            su.Obs.Trace_json.su_cats;
          let missing =
            List.filter
              (fun k -> not (List.mem_assoc k su.Obs.Trace_json.su_cats))
              !require_kinds
          in
          if missing <> [] then begin
            Printf.eprintf "tracecheck: missing span kind(s): %s\n"
              (String.concat ", " missing);
            exit 1
          end;
          if List.length su.Obs.Trace_json.su_tids < !require_tids then begin
            Printf.eprintf "tracecheck: only %d domain track(s), need %d\n"
              (List.length su.Obs.Trace_json.su_tids)
              !require_tids;
            exit 1
          end;
          print_endline "trace OK"))
