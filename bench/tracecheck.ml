(* tracecheck - validate a Chrome trace-event file produced by --trace.

   Checks that every domain track is balanced (each E closes the most
   recent B of the same name) and that timestamps are non-decreasing per
   track, then prints a summary.  Optional requirements:

     tracecheck FILE [--require-kinds k1,k2,...] [--require-tids N]

   exit 0: valid (and requirements met); exit 1: invalid or missing
   coverage.  Used by CI on a psaflow --trace run. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let split_commas s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let () =
  let file = ref None in
  let require_kinds = ref [] in
  let require_tids = ref 0 in
  let rec parse = function
    | [] -> ()
    | "--require-kinds" :: v :: rest ->
      require_kinds := split_commas v;
      parse rest
    | "--require-tids" :: v :: rest ->
      require_tids := int_of_string v;
      parse rest
    | arg :: rest when !file = None && String.length arg > 0 && arg.[0] <> '-' ->
      file := Some arg;
      parse rest
    | arg :: _ ->
      Printf.eprintf "tracecheck: unexpected argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !file with
  | None ->
    prerr_endline
      "usage: tracecheck FILE [--require-kinds k1,k2,...] [--require-tids N]";
    exit 2
  | Some path ->
    (match read_file path with
     | exception Sys_error msg ->
       Printf.eprintf "tracecheck: %s\n" msg;
       exit 1
     | contents ->
       (match Obs.Trace_json.validate_string contents with
        | Error msg ->
          Printf.eprintf "tracecheck: %s: INVALID: %s\n" path msg;
          exit 1
        | Ok su ->
          Printf.printf "%s: %d events, %d domain track(s)\n" path
            su.Obs.Trace_json.su_events
            (List.length su.Obs.Trace_json.su_tids);
          List.iter
            (fun (cat, n) -> Printf.printf "  %-14s %d span(s)\n" cat n)
            su.Obs.Trace_json.su_cats;
          let missing =
            List.filter
              (fun k -> not (List.mem_assoc k su.Obs.Trace_json.su_cats))
              !require_kinds
          in
          if missing <> [] then begin
            Printf.eprintf "tracecheck: missing span kind(s): %s\n"
              (String.concat ", " missing);
            exit 1
          end;
          if List.length su.Obs.Trace_json.su_tids < !require_tids then begin
            Printf.eprintf "tracecheck: only %d domain track(s), need %d\n"
              (List.length su.Obs.Trace_json.su_tids)
              !require_tids;
            exit 1
          end;
          print_endline "trace OK"))
