(* Compare two bench JSON dumps (written by main.exe --json) and fail on
   performance regressions.

   Usage: compare.exe CURRENT.json BASELINE.json
          compare.exe --warm-cold COLD.json WARM.json
          compare.exe --jobs-speedup JOBS1.json JOBSN.json

   The second form checks the evaluation cache's effectiveness: WARM must
   have been produced by rerunning the same bench against the cache
   directory COLD populated.  It requires the combined runs+micro+ablation
   wall time to drop at least 2x and the warm run to have actually served
   entries from the disk tier.

   The third form checks the work-stealing scheduler's effectiveness:
   both files must come from the same commit with the cache off, JOBS1
   run at --jobs 1 and JOBSN at --jobs 4 (or more).  It requires the
   combined runs+ablation wall time to drop at least 1.8x and the
   parallel run to have actually scheduled futures (pool.spawned > 0).
   The gate is skipped (exit 0) when the recording host reports fewer
   than 4 cores, where no such speedup is physically available.

   Gates (first form):
   - every wall-clock section present in both files may regress by at
     most 20% (lower is better);
   - every "statements_per_sec" entry present in both files may regress
     by at most 10% per backend (higher is better);
   - the current compiled-backend throughput must be at least 3x the
     baseline walker throughput (the committed seed's "ast" entry is the
     reference tree walker on the recording host);
   - the current vm-backend throughput must be at least 3x the current
     compiled-backend throughput (the superinstruction VM's reason to
     exist on the DSE hot path);
   - per-app VM step coverage ("vm_coverage": planned statements / total
     statements on the evaluation workloads) must hold absolute floors on
     the loop-nest apps — AdPredictor >= 0.9, K-Means >= 0.9, N-Body >=
     0.99 — and no app may drop more than 0.02 below its baseline
     coverage.

   Exit status 1 on any violation, 0 otherwise.  The JSON reader below is
   a minimal recursive-descent parser for the subset bench emits (objects,
   strings, numbers, booleans); no external dependency. *)

type json =
  | Obj of (string * json) list
  | Num of float
  | Bool of bool
  | Str of string

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some 'n' -> Buffer.add_char b '\n'
         | Some 't' -> Buffer.add_char b '\t'
         | Some c -> Buffer.add_char b c
         | None -> fail "unterminated escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('0' .. '9' | '-') -> Num (number ())
    | _ -> fail "unexpected character"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ((k, v) :: acc)
        | Some '}' ->
          advance ();
          List.rev ((k, v) :: acc)
        | _ -> fail "expected ',' or '}'"
      in
      Obj (members [])
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg ->
    Printf.eprintf "compare: cannot read %s: %s\n" path msg;
    exit 2
  | ic ->
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let num_members j =
  match j with
  | Obj fields ->
    List.filter_map (function k, Num f -> Some (k, f) | _ -> None) fields
  | _ -> []

let tolerance = 0.20

(* throughput is measured over tens of millions of statements, so it is
   far less noisy than wall-clock sections: gate each backend tighter *)
let throughput_tolerance = 0.10

(* sections this fast are dominated by scheduling noise; report but never
   gate on them *)
let section_floor_s = 0.05

(* absolute per-app floors for VM step coverage: the loop-nest lowering's
   reason to exist is keeping these apps' hot loops on the planned path *)
let coverage_floors =
  [ ("AdPredictor", 0.90);
    ("K-Means Classification", 0.90);
    ("N-Body Simulation", 0.99)
  ]

(* coverage is deterministic, so any drop is a real planning regression;
   the small slack only absorbs workload-mix changes between revisions *)
let coverage_slack = 0.02

let failures = ref 0

let report fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL  %s\n" msg)
    fmt

(* every parsed input, so a failing gate can say exactly which code and
   configuration produced each side *)
let parsed : (string * json) list ref = ref []

let parse path =
  match parse_json (read_file path) with
  | j ->
    parsed := !parsed @ [ (path, j) ];
    j
  | exception Parse_error msg ->
    Printf.eprintf "compare: %s: %s\n" path msg;
    exit 2

let print_meta () =
  List.iter
    (fun (path, j) ->
      match member "meta" j with
      | Some (Obj fields) ->
        Printf.printf "meta  %s:" path;
        List.iter
          (fun (k, v) ->
            let s =
              match v with
              | Str s -> s
              | Num f -> Printf.sprintf "%g" f
              | Bool b -> string_of_bool b
              | Obj _ -> "{..}"
            in
            Printf.printf " %s=%s" k s)
          fields;
        print_newline ()
      | _ -> Printf.printf "meta  %s: none recorded (pre-ledger dump)\n" path)
    !parsed

(* ---- warm/cold cache-effectiveness gate ---- *)

let warm_cold_sections = [ "runs"; "micro"; "ablation" ]

let warm_cold_speedup = 2.0

let run_warm_cold cold_path warm_path =
  let cold = parse cold_path in
  let warm = parse warm_path in
  let sections j = Option.fold ~none:[] ~some:num_members (member "sections" j) in
  let combined label j =
    List.fold_left
      (fun acc name ->
        match List.assoc_opt name (sections j) with
        | Some t -> acc +. t
        | None ->
          report "%s is missing section %S" label name;
          acc)
      0.0 warm_cold_sections
  in
  let cold_t = combined "cold run" cold in
  let warm_t = combined "warm run" warm in
  let ratio = if warm_t > 0.0 then cold_t /. warm_t else infinity in
  if ratio < warm_cold_speedup then
    report "warm %s only %.2fx faster than cold (%.3fs -> %.3fs, needs >= %.1fx)"
      (String.concat "+" warm_cold_sections)
      ratio cold_t warm_t warm_cold_speedup
  else
    Printf.printf "ok    warm %s %.3fs -> %.3fs (%.2fx >= %.1fx)\n"
      (String.concat "+" warm_cold_sections)
      cold_t warm_t ratio warm_cold_speedup;
  (* the speedup must come from the cache, not from noise *)
  let cache_stat j name =
    match member "cache" j with
    | Some c -> List.assoc_opt name (num_members c)
    | None -> None
  in
  (match cache_stat warm "disk_hits" with
   | Some h when h > 0.0 ->
     Printf.printf "ok    warm run served %.0f entries from the disk tier\n" h
   | Some _ | None -> report "warm run has no disk hits (cache not exercised)");
  (match cache_stat warm "errors" with
   | Some e when e > 0.0 -> Printf.printf "note  warm run logged %.0f cache errors\n" e
   | _ -> ());
  (match cache_stat warm "corrupt" with
   | Some e when e > 0.0 ->
     Printf.printf "note  warm run evicted %.0f corrupted cache entries\n" e
   | _ -> ())

(* ---- parallel-speedup gate ---- *)

(* micro and interp are single-domain by construction, so the scheduler
   gate only sums the sections that fan out over the pool *)
let jobs_sections = [ "runs"; "ablation" ]

let jobs_speedup = 1.8

(* below this the host cannot show a 1.8x four-way speedup even in
   principle; the gate degrades to an informational skip *)
let jobs_min_cores = 4.0

let run_jobs_speedup seq_path par_path =
  let seq = parse seq_path in
  let par = parse par_path in
  let top j name = member name j |> Option.map (function Num f -> f | _ -> nan) in
  (match top seq "jobs" with
   | Some j when j > 1.0 ->
     report "%s was recorded at --jobs %.0f (expected 1)" seq_path j
   | _ -> ());
  (match top par "jobs" with
   | Some j when j < jobs_min_cores ->
     report "%s was recorded at --jobs %.0f (expected >= %.0f)" par_path j
       jobs_min_cores
   | _ -> ());
  match top par "cores" with
  | Some cores when cores < jobs_min_cores ->
    Printf.printf
      "skip  host reports %.0f core%s (< %.0f): parallel speedup gate not applicable\n"
      cores
      (if cores = 1.0 then "" else "s")
      jobs_min_cores
  | _ ->
    let sections j = Option.fold ~none:[] ~some:num_members (member "sections" j) in
    let combined label j =
      List.fold_left
        (fun acc name ->
          match List.assoc_opt name (sections j) with
          | Some t -> acc +. t
          | None ->
            report "%s is missing section %S" label name;
            acc)
        0.0 jobs_sections
    in
    let seq_t = combined "jobs-1 run" seq in
    let par_t = combined "parallel run" par in
    let ratio = if par_t > 0.0 then seq_t /. par_t else infinity in
    if ratio < jobs_speedup then
      report "parallel %s only %.2fx faster than --jobs 1 (%.3fs -> %.3fs, needs >= %.1fx)"
        (String.concat "+" jobs_sections)
        ratio seq_t par_t jobs_speedup
    else
      Printf.printf "ok    parallel %s %.3fs -> %.3fs (%.2fx >= %.1fx)\n"
        (String.concat "+" jobs_sections)
        seq_t par_t ratio jobs_speedup;
    (* the speedup must come from the scheduler, not from noise *)
    let metric j name =
      match member "metrics" j with
      | Some m -> List.assoc_opt name (num_members m)
      | None -> None
    in
    (match metric par "pool.spawned" with
     | Some n when n > 0.0 ->
       Printf.printf "ok    parallel run spawned %.0f futures" n;
       (match metric par "pool.steals" with
        | Some s -> Printf.printf " (%.0f stolen)\n" s
        | None -> print_newline ())
     | Some _ | None ->
       report "parallel run spawned no futures (scheduler not exercised)")

(* ---- seed-baseline regression gate ---- *)

let run_regressions current_path baseline_path =
  let current = parse current_path in
  let baseline = parse baseline_path in
  (* wall-clock sections: lower is better *)
  let cur_sections = Option.fold ~none:[] ~some:num_members (member "sections" current) in
  let base_sections =
    Option.fold ~none:[] ~some:num_members (member "sections" baseline)
  in
  List.iter
    (fun (name, base_t) ->
      match List.assoc_opt name cur_sections with
      | None -> ()
      | Some cur_t ->
        if Float.max base_t cur_t < section_floor_s then
          Printf.printf "ok    section %-10s %.3fs -> %.3fs (below noise floor)\n" name
            base_t cur_t
        else if base_t > 0.0 && cur_t > base_t *. (1.0 +. tolerance) then
          report "section %-10s %.3fs -> %.3fs (+%.0f%%, limit +%.0f%%)" name base_t
            cur_t
            ((cur_t /. base_t -. 1.0) *. 100.0)
            (tolerance *. 100.0)
        else
          Printf.printf "ok    section %-10s %.3fs -> %.3fs\n" name base_t cur_t)
    base_sections;
  (* interpreter throughput: higher is better *)
  let cur_tp =
    Option.fold ~none:[] ~some:num_members (member "statements_per_sec" current)
  in
  let base_tp =
    Option.fold ~none:[] ~some:num_members (member "statements_per_sec" baseline)
  in
  List.iter
    (fun (name, base_sps) ->
      match List.assoc_opt name cur_tp with
      | None -> ()
      | Some cur_sps ->
        if base_sps > 0.0 && cur_sps < base_sps *. (1.0 -. throughput_tolerance)
        then
          report "throughput %-8s %.2e -> %.2e stmts/s (%.0f%%, limit -%.0f%%)" name
            base_sps cur_sps
            ((cur_sps /. base_sps -. 1.0) *. 100.0)
            (throughput_tolerance *. 100.0)
        else
          Printf.printf "ok    throughput %-8s %.2e -> %.2e stmts/s\n" name base_sps
            cur_sps)
    base_tp;
  (* the compiled backend must hold its >= 3x win over the seed walker *)
  (match List.assoc_opt "ast" base_tp, List.assoc_opt "compiled" cur_tp with
   | Some base_ast, Some cur_compiled when base_ast > 0.0 ->
     let ratio = cur_compiled /. base_ast in
     if ratio < 3.0 then
       report "compiled backend only %.2fx the seed walker (needs >= 3x)" ratio
     else Printf.printf "ok    compiled backend %.2fx the seed walker (>= 3x)\n" ratio
   | _ -> ());
  (* and the VM must hold its >= 3x win over the compiled closures,
     measured within the same run so host speed cancels out *)
  (match List.assoc_opt "compiled" cur_tp, List.assoc_opt "vm" cur_tp with
   | Some cur_compiled, Some cur_vm when cur_compiled > 0.0 ->
     let ratio = cur_vm /. cur_compiled in
     if ratio < 3.0 then
       report "vm backend only %.2fx the compiled backend (needs >= 3x)" ratio
     else
       Printf.printf "ok    vm backend %.2fx the compiled backend (>= 3x)\n" ratio
   | _ -> ());
  (* VM step coverage: absolute floors on the loop-nest apps ... *)
  let cur_cov =
    Option.fold ~none:[] ~some:num_members (member "vm_coverage" current)
  in
  if cur_cov <> [] then begin
    List.iter
      (fun (name, floor) ->
        match List.assoc_opt name cur_cov with
        | None -> report "vm coverage is missing app %S" name
        | Some c ->
          if c < floor then
            report "vm coverage %-26s %.3f (needs >= %.2f)" name c floor
          else Printf.printf "ok    vm coverage %-26s %.3f (>= %.2f)\n" name c floor)
      coverage_floors;
    (* ... and no regression against the recorded baseline for any app *)
    let base_cov =
      Option.fold ~none:[] ~some:num_members (member "vm_coverage" baseline)
    in
    List.iter
      (fun (name, base_c) ->
        match List.assoc_opt name cur_cov with
        | None -> report "vm coverage dropped app %S (baseline %.3f)" name base_c
        | Some cur_c ->
          if cur_c < base_c -. coverage_slack then
            report "vm coverage %-26s %.3f -> %.3f (limit -%.2f)" name base_c cur_c
              coverage_slack
          else if not (List.mem_assoc name coverage_floors) then
            Printf.printf "ok    vm coverage %-26s %.3f -> %.3f\n" name base_c cur_c)
      base_cov
  end

let () =
  (match Sys.argv with
   | [| _; "--warm-cold"; cold; warm |] -> run_warm_cold cold warm
   | [| _; "--jobs-speedup"; seq; par |] -> run_jobs_speedup seq par
   | [| _; current; baseline |] -> run_regressions current baseline
   | _ ->
     prerr_endline
       "usage: compare.exe CURRENT.json BASELINE.json\n\
       \       compare.exe --warm-cold COLD.json WARM.json\n\
       \       compare.exe --jobs-speedup JOBS1.json JOBSN.json";
     exit 2);
  if !failures > 0 then begin
    print_meta ();
    Printf.printf "%d violation%s detected\n" !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end
  else print_endline "all gates passed"
