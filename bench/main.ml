(* Benchmark harness.

   Regenerates every table and figure of the paper's evaluation section
   from five uninformed PSA-flow runs:

     Fig. 5  - hotspot speedups of all generated designs (+ Auto-Selected)
     Table I - added lines of code per generated design
     Fig. 6  - FPGA-vs-GPU cost across price ratios

   and runs Bechamel micro-benchmarks of the pipeline stages behind each
   experiment (grouped per figure/table), so regressions in the flow
   machinery itself are visible.

   An ablation study (each optimising transform disabled in turn) and the
   micro-benchmarks round out the evaluation.

   Usage:
     main.exe                 everything (evaluation workloads)
     main.exe --quick         test workloads (fast smoke run)
     main.exe --jobs N        domains for parallel flow execution (1 = sequential)
     main.exe --json FILE     dump per-section wall-clock times as JSON
     main.exe --interp B      default interpreter backend: ast | compiled | vm
     main.exe --cache D       evaluation-cache directory (default .psa-cache; off = disabled)
     main.exe --faults SPEC   arm the deterministic fault-injection harness
     main.exe --trace FILE    write a Chrome trace-event span trace of the run
     main.exe --ledger D      run-ledger directory for the bench record
                              (default .psa-runs; off = disabled)
     main.exe fig5 table1 fig6 ablation micro interp    any subset, in any order *)

let argv = Array.to_list Sys.argv

let quick = List.exists (fun a -> a = "--quick" || a = "-q") argv

let opt_value flag =
  let rec find = function
    | a :: v :: _ when a = flag -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find argv

let () =
  match opt_value "--jobs" with
  | None -> ()
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> Util.Pool.set_default_jobs n
    | None ->
      prerr_endline "bench: --jobs expects an integer";
      exit 2)

let () =
  match opt_value "--interp" with
  | None -> ()
  | Some v -> (
    match Machine.backend_of_string v with
    | Some b -> Machine.set_default_backend b
    | None ->
      prerr_endline "bench: --interp expects 'ast', 'compiled' or 'vm'";
      exit 2)

let () =
  match opt_value "--cache" with
  | None -> Cache.set_dir (Some ".psa-cache")
  | Some "off" -> Cache.set_dir None
  | Some dir -> Cache.set_dir (Some dir)

let () =
  match opt_value "--faults" with
  | None -> ()
  | Some spec -> (
    match Util.Faultsim.parse spec with
    | Ok s -> Util.Faultsim.arm s
    | Error msg ->
      Printf.eprintf "bench: %s\n" msg;
      exit 2)

let json_file = opt_value "--json"

let ledger =
  match opt_value "--ledger" with
  | Some "off" -> None
  | Some dir -> Some dir
  | None -> Some ".psa-runs"

let trace_file = opt_value "--trace"

let () = if trace_file <> None then Obs.Trace.start ()

let wants section =
  let named = [ "runs"; "fig5"; "table1"; "fig6"; "micro"; "ablation"; "interp" ] in
  let requested = List.filter (fun a -> List.mem a named) argv in
  requested = [] || List.mem section requested

(* ---- per-section wall-clock accounting (for --json) ---- *)

(* Every section timing reads the one process-anchored clock
   (Obs.Monotonic) and lands in the metrics registry as
   bench.section.<name>, next to the subsystem counters. *)
let timings : (string * float) list ref = ref []

let timed name f =
  Obs.Trace.with_span ~name ~kind:Obs.Trace.Section @@ fun _ ->
  let t0 = Obs.Monotonic.now_s () in
  let r = f () in
  let dt = Obs.Monotonic.now_s () -. t0 in
  Obs.Metrics.Gauge.set (Obs.Metrics.gauge ("bench.section." ^ name)) dt;
  timings := (name, dt) :: !timings;
  r

(* interpreter throughput per backend (statements/s), filled by the
   "interp" section and reported under "statements_per_sec" in the JSON *)
let throughput : (string * float) list ref = ref []

(* per-app VM step coverage (planned statements / total statements), filled
   by the "interp" section and reported under "vm_coverage" in the JSON *)
let vm_coverage : (string * float) list ref = ref []

let write_json path ~total =
  let b = Buffer.create 4096 in
  let entries = List.rev !timings @ [ ("total", total) ] in
  (* "cores" lets compare.exe --jobs-speedup skip its gate on hosts with
     too few cores to show a parallel speedup at all *)
  Printf.bprintf b "{\n  \"quick\": %b,\n  \"jobs\": %d,\n  \"cores\": %d,\n"
    quick
    (Util.Pool.default_jobs ())
    (Domain.recommended_domain_count ());
  (* provenance: which code and configuration produced these numbers;
     compare.exe prints both sides' meta when a gate fails *)
  Printf.bprintf b
    "  \"meta\": {\n\
    \    \"schema\": %d,\n\
    \    \"git_rev\": %S,\n\
    \    \"ir_version\": %d,\n\
    \    \"backend\": %S,\n\
    \    \"cmdline\": %S\n\
    \  },\n"
    Obs.Ledger.schema_version Run_record.git_rev Ir.version
    (Machine.backend_name (Machine.default_backend ()))
    (String.concat " " argv);
  Printf.bprintf b "  \"sections\": {\n";
  List.iteri
    (fun i (name, t) ->
      Printf.bprintf b "    %S: %.6f%s\n" name t
        (if i < List.length entries - 1 then "," else ""))
    entries;
  Buffer.add_string b "  },\n  \"statements_per_sec\": {\n";
  let tp = !throughput in
  List.iteri
    (fun i (name, sps) ->
      Printf.bprintf b "    %S: %.1f%s\n" name sps
        (if i < List.length tp - 1 then "," else ""))
    tp;
  Buffer.add_string b "  },\n  \"vm_coverage\": {\n";
  let cov = !vm_coverage in
  List.iteri
    (fun i (name, c) ->
      Printf.bprintf b "    %S: %.4f%s\n" name c
        (if i < List.length cov - 1 then "," else ""))
    cov;
  Buffer.add_string b "  },\n";
  let s = Cache.stats () in
  Printf.bprintf b
    "  \"cache\": {\n\
    \    \"enabled\": %b,\n\
    \    \"mem_hits\": %d,\n\
    \    \"disk_hits\": %d,\n\
    \    \"misses\": %d,\n\
    \    \"waits\": %d,\n\
    \    \"errors\": %d,\n\
    \    \"corrupt\": %d,\n\
    \    \"evictions\": %d,\n\
    \    \"bytes_read\": %d,\n\
    \    \"bytes_written\": %d\n\
    \  },\n"
    (Cache.enabled ()) s.Cache.mem_hits s.Cache.disk_hits s.Cache.misses
    s.Cache.waits s.Cache.errors s.Cache.corrupt s.Cache.evictions
    s.Cache.bytes_read s.Cache.bytes_written;
  (* flat name -> number map via the shared Obs.Metrics.flatten:
     compare.ml's parser has no array support, so histograms arrive as
     .count/.sum/.p50/.p90/.p99 entries; non-finite values (empty
     histograms) are dropped to keep the document parseable *)
  let metrics =
    List.filter
      (fun (_, v) -> Float.is_finite v)
      (Obs.Metrics.flatten (Obs.Metrics.snapshot ()))
  in
  Buffer.add_string b "  \"metrics\": {\n";
  List.iteri
    (fun i (name, v) ->
      Printf.bprintf b "    %S: %.6g%s\n" name v
        (if i < List.length metrics - 1 then "," else ""))
    metrics;
  Buffer.add_string b "  }\n}\n";
  (* temp file + atomic rename: a crashed bench never leaves a truncated
     JSON where compare.exe expects a complete one *)
  match Obs.Atomic_io.write_file path (Buffer.contents b) with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "bench: cannot write %s: %s\n" path msg;
    exit 1

(* ---- experiment regeneration ---- *)

let reports = lazy (Runs.ok_reports (Runs.collect ~quick ()))

let run_experiments () =
  let reports = timed "runs" (fun () -> Lazy.force reports) in
  if wants "fig5" then
    timed "fig5" (fun () ->
        print_newline ();
        print_string (Fig5.render (Fig5.of_reports reports)));
  if wants "table1" then
    timed "table1" (fun () ->
        print_newline ();
        print_string (Table1.render (Table1.of_reports reports)));
  if wants "fig6" then
    timed "fig6" (fun () ->
        print_newline ();
        print_string (Fig6.render (Fig6.of_reports reports)))

(* ---- micro-benchmarks ---- *)

let nbody_program = App.program Nbody.app

let tiny_config =
  { Machine.default_config with
    overrides = App.machine_overrides [ ("N", 64); ("STEPS", 1) ] }

let micro_inputs =
  lazy
    (let art = Artifact.create Nbody.app ~workload:[ ("N", 64); ("STEPS", 1) ] in
     match Graph.run Pipeline.target_independent art with
     | Ok [ oc ] ->
       let art = oc.Graph.oc_artifact in
       let kp = Artifact.kprofile_exn art in
       let hip = Result.get_ok (Hip.generate art.Artifact.art_program ~kernel:"knl") in
       let ks =
         Result.get_ok
           (Kstatic.of_kernel hip.Hip.hip_program ~fname:hip.Hip.hip_body_fn
              ~thread_index:"i")
       in
       (art, kp, hip, ks)
     | _ -> failwith "micro bench setup failed")

let micro_tests =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  Test.make_grouped ~name:"psaflow"
    [
      (* Fig. 5's machinery: frontend, profiling, analyses, codegen, models *)
      t "fig5/parse_nbody" (fun () -> ignore (App.program Nbody.app));
      t "fig5/interpret_nbody_64" (fun () ->
          ignore (Machine.run ~config:tiny_config nbody_program));
      t "fig5/hotspot_detect" (fun () ->
          ignore (Hotspot.detect ~config:tiny_config nbody_program));
      t "fig5/dependence_analysis" (fun () ->
          let lm = List.hd (Query.loops nbody_program) in
          ignore (Dependence.analyse_loop nbody_program lm));
      t "fig5/hip_codegen" (fun () ->
          let art, _, _, _ = Lazy.force micro_inputs in
          ignore (Hip.generate art.Artifact.art_program ~kernel:"knl"));
      t "fig5/gpu_model_estimate" (fun () ->
          let _, kp, _, ks = Lazy.force micro_inputs in
          ignore (Gpu_model.estimate Device.rtx_2080_ti ks kp Gpu_model.default_params));
      t "fig5/cpu_model_openmp" (fun () ->
          let _, kp, _, _ = Lazy.force micro_inputs in
          ignore (Cpu_model.openmp Device.epyc_7543 ~threads:32 kp));
      (* Table I's machinery: emission + LOC accounting *)
      t "table1/pretty_print" (fun () -> ignore (Pretty.program_to_string nbody_program));
      t "table1/loc_count" (fun () -> ignore (Loc_count.program_loc nbody_program));
      (* Fig. 6's machinery: FPGA resource model, the Fig. 2 DSE, cost curve *)
      t "fig6/fpga_resource_model" (fun () ->
          let _, _, _, ks = Lazy.force micro_inputs in
          ignore (Fpga_model.resources_of Device.pac_stratix10 ks ~unroll:8));
      t "fig6/unroll_until_overmap_dse" (fun () ->
          let _, kp, hip, ks = Lazy.force micro_inputs in
          ignore
            (Unroll_dse.run Device.pac_stratix10 ks kp ~zero_copy:true
               hip.Hip.hip_program ~kernel_fn:hip.Hip.hip_launch_fn));
      t "fig6/cost_curve" (fun () ->
          ignore
            (List.map
               (fun r -> Cost.relative_cost ~fpga_s:1e-3 ~gpu_s:4e-4 ~price_ratio:r)
               Fig6.price_ratios));
    ]

let run_micro () =
  let open Bechamel in
  ignore (Lazy.force micro_inputs);
  (* the micro section times raw stage latencies; drop the suite's cached
     artifacts from the memory tier and compact first, so Bechamel's GC
     stabilization does not scale with however much the preceding
     sections (cold or warm) left live *)
  Cache.clear_memory ();
  Gc.compact ();
  (* quick mode is a smoke run: a tiny sampling quota keeps the (fixed,
     quota-bound) Bechamel time from dominating the whole bench *)
  let cfg =
    if quick then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.01) ()
    else Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances micro_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let table = Util.Table.create ~headers:[ "micro-benchmark"; "time/run" ] in
  Util.Table.set_aligns table [ Util.Table.Left; Util.Table.Right ];
  List.iter
    (fun (name, est) ->
      let cell =
        match Analyze.OLS.estimates est with
        | Some (ns :: _) ->
          if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        | Some [] | None -> "?"
      in
      Util.Table.add_row table [ name; cell ])
    (List.sort compare rows);
  print_newline ();
  print_endline "Micro-benchmarks of the pipeline stages (Bechamel, OLS time/run)";
  Util.Table.print table

(* ---- interpreter throughput ---- *)

let run_interp_throughput () =
  (* always the evaluation workloads: interpreter throughput is measured
     on the kernels the DSE hot path actually interprets, where the
     per-run lowering/compilation cost is amortised the way it is in a
     flow; quick mode only drops the repetitions *)
  let reps = if quick then 1 else 3 in
  let inputs =
    List.map
      (fun (app : App.t) ->
        let config =
          { Machine.default_config with
            overrides = App.machine_overrides app.App.app_eval_overrides }
        in
        (app.App.app_name, config, App.program app))
      Suite.all
  in
  (* per-app (planned, total) statements of the Vm leg; coverage is
     deterministic, so accumulating across reps leaves the ratio exact *)
  let cov : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let measure backend =
    let steps = ref 0 in
    let t0 = Obs.Monotonic.now_s () in
    for _ = 1 to reps do
      List.iter
        (fun (name, config, p) ->
          let p0 = Machine.planned_steps () in
          let r = Machine.run ~config ~backend p in
          let run_steps = r.Machine.counters.Counters.steps in
          steps := !steps + run_steps;
          if backend = `Vm then begin
            let planned, total =
              Option.value (Hashtbl.find_opt cov name) ~default:(0, 0)
            in
            Hashtbl.replace cov name
              (planned + (Machine.planned_steps () - p0), total + run_steps)
          end)
        inputs
    done;
    let dt = Obs.Monotonic.now_s () -. t0 in
    (float_of_int !steps /. dt, !steps)
  in
  let ast_sps, steps = measure `Ast in
  let compiled_sps, _ = measure `Compiled in
  let vm_sps, _ = measure `Vm in
  throughput := [ ("ast", ast_sps); ("compiled", compiled_sps); ("vm", vm_sps) ];
  vm_coverage :=
    List.filter_map
      (fun (name, _, _) ->
        match Hashtbl.find_opt cov name with
        | Some (planned, total) when total > 0 ->
          Some (name, float_of_int planned /. float_of_int total)
        | _ -> None)
      inputs;
  let table = Util.Table.create ~headers:[ "backend"; "statements/s"; "speedup" ] in
  Util.Table.set_aligns table [ Util.Table.Left; Util.Table.Right; Util.Table.Right ];
  Util.Table.add_row table [ "ast (tree walker)"; Printf.sprintf "%.2e" ast_sps; "1.00x" ];
  Util.Table.add_row table
    [ "compiled (closures)";
      Printf.sprintf "%.2e" compiled_sps;
      Printf.sprintf "%.2fx" (compiled_sps /. ast_sps) ];
  Util.Table.add_row table
    [ "vm (superinstructions)";
      Printf.sprintf "%.2e" vm_sps;
      Printf.sprintf "%.2fx" (vm_sps /. ast_sps) ];
  print_newline ();
  Printf.printf
    "Interpreter throughput - five suite apps, evaluation workloads, %d rep%s (%d statements/run)\n"
    reps
    (if reps = 1 then "" else "s")
    (steps / reps);
  Util.Table.print table;
  let ctable = Util.Table.create ~headers:[ "app"; "vm step coverage" ] in
  Util.Table.set_aligns ctable [ Util.Table.Left; Util.Table.Right ];
  List.iter
    (fun (name, c) -> Util.Table.add_row ctable [ name; Printf.sprintf "%.3f" c ])
    !vm_coverage;
  print_newline ();
  print_endline
    "VM step coverage - planned statements / total statements per app";
  Util.Table.print ctable

let run_ablation () =
  (* the transforms' individual contributions, on the two accelerator-won
     benchmarks: N-Body (GPU) and AdPredictor (FPGA) *)
  (match Ablation.gpu ~quick Nbody.app with
   | Ok rows ->
     print_newline ();
     print_string
       (Ablation.render ~title:"Ablation - N-Body HIP design on the RTX 2080 Ti" rows)
   | Error e -> Printf.eprintf "gpu ablation failed: %s\n" e);
  match Ablation.fpga ~quick Adpredictor.app with
  | Ok rows ->
    print_newline ();
    print_string
      (Ablation.render ~title:"Ablation - AdPredictor oneAPI design on the Stratix10" rows)
  | Error e -> Printf.eprintf "fpga ablation failed: %s\n" e

let () =
  let t0 = Obs.Monotonic.now_s () in
  if wants "runs" || wants "fig5" || wants "table1" || wants "fig6" then
    run_experiments ();
  if wants "ablation" then timed "ablation" run_ablation;
  if wants "micro" then timed "micro" run_micro;
  if wants "interp" then timed "interp" run_interp_throughput;
  (match json_file with
   | Some path -> write_json path ~total:(Obs.Monotonic.now_s () -. t0)
   | None -> ());
  (* one bench-kind ledger record per invocation: the bench.section.*
     gauges and subsystem counters it snapshots are what `psaflow diff`
     gates on in report-check *)
  (match ledger with
   | None -> ()
   | Some dir -> (
     let record =
       Run_record.base ~kind:"bench" ~app:"suite"
         ~mode:(if quick then "quick" else "eval")
         ~workload:[] ~status:0
         ~cmdline:(String.concat " " argv)
     in
     match Obs.Ledger.append ~dir record with
     | Ok _ -> ()
     | Error msg -> Printf.eprintf "bench: ledger append failed: %s\n" msg));
  match trace_file with
  | None -> ()
  | Some path ->
    Obs.Trace.stop ();
    (match Obs.Trace.write_file path with
     | Ok () -> ()
     | Error msg ->
       Printf.eprintf "bench: cannot write trace %s: %s\n" path msg;
       exit 1)
